//! The runtime: configure a simulated machine, compile Swift, run it.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Instant;

use adlb::{merge_tenant_rows, TenantQuota, TenantSpec, TenantStats};
use mpisim::{FaultPlan, LatencyStats, World};
use pfs::{Pfs, PfsConfig};
use tclish::PackageInit;
use turbine::{InterpPolicy, RankOutput, TurbineConfig, TurbineProgram};

use crate::native::NativeLibrary;
use crate::result::{tenant_task_durations, LatencyReport, RunResult, SwiftTError, TenantReport};

/// One queued tenant program (see [`Runtime::submit`]).
#[derive(Clone)]
struct TenantJob {
    name: String,
    weight: u32,
    quota: Option<TenantQuota>,
    source: String,
}

/// A configured simulated machine that can run Swift programs.
///
/// Builder-style: pick rank counts and policies, register native
/// libraries and Tcl packages, then [`Runtime::run`].
#[derive(Clone)]
pub struct Runtime {
    ranks: usize,
    servers: usize,
    engines: usize,
    policy: InterpPolicy,
    steal: bool,
    batching: Option<bool>,
    replication: Option<usize>,
    re_replication: Option<bool>,
    checkpoint: Option<usize>,
    resume: bool,
    checkpoint_store: Option<Arc<Pfs>>,
    retry: adlb::RetryPolicy,
    faults: FaultPlan,
    tracing: bool,
    natives: Vec<NativeLibrary>,
    tcl_packages: Vec<(String, String, String)>,
    args: Vec<(String, String)>,
    tenants: Vec<TenantJob>,
}

impl Runtime {
    /// A machine with `ranks` ranks: 1 engine, 1 ADLB server, and the rest
    /// workers — the paper's "vast majority of processes are workers"
    /// shape scaled down.
    ///
    /// # Panics
    /// Panics if `ranks < 3` (need engine + worker + server).
    pub fn new(ranks: usize) -> Self {
        assert!(ranks >= 3, "need at least 3 ranks (engine, worker, server)");
        Runtime {
            ranks,
            servers: 1,
            engines: 1,
            policy: InterpPolicy::Retain,
            steal: true,
            batching: None,
            replication: None,
            re_replication: None,
            checkpoint: None,
            resume: false,
            checkpoint_store: None,
            retry: adlb::RetryPolicy::default(),
            faults: FaultPlan::new(),
            tracing: false,
            natives: Vec::new(),
            tcl_packages: Vec::new(),
            args: Vec::new(),
            tenants: Vec::new(),
        }
    }

    /// Set the number of ADLB servers.
    pub fn servers(mut self, n: usize) -> Self {
        self.servers = n;
        self
    }

    /// Set the number of engines.
    pub fn engines(mut self, n: usize) -> Self {
        self.engines = n;
        self
    }

    /// Set the §III.C interpreter policy.
    pub fn policy(mut self, p: InterpPolicy) -> Self {
        self.policy = p;
        self
    }

    /// Enable/disable ADLB work stealing (ablation switch).
    pub fn work_stealing(mut self, on: bool) -> Self {
        self.steal = on;
        self
    }

    /// Enable/disable client-side wire batching — get prefetch and put
    /// pipelining (ablation switch E5). Off recovers the PR 1
    /// one-task-per-round-trip protocol. When not set explicitly, the
    /// `SWIFTT_BATCHING` environment variable (`0`/`off`/`false` to
    /// disable) chooses, defaulting to on — this is how the CI
    /// fault-matrix sweeps configurations without code changes.
    pub fn batching(mut self, on: bool) -> Self {
        self.batching = Some(on);
        self
    }

    /// Copies of each ADLB server's recoverable state (data-store shard,
    /// queues, leases), counting the primary. With `r >= 2` the run
    /// survives the death of `r - 1` servers: a ring successor promotes
    /// the replica and serves the dead server's shard and clients. `1`
    /// disables replication (a dead server's shard is lost and the run
    /// winds down with a diagnosis). Default: 2 when the machine has more
    /// than one server, else 1. When not set explicitly, the
    /// `SWIFTT_REPLICATION` environment variable chooses instead (clamped
    /// to the server count, so a matrix sweep can export it globally).
    ///
    /// # Panics
    /// Panics (at run time) if `r` is 0 or exceeds the server count.
    pub fn replication(mut self, r: usize) -> Self {
        self.replication = Some(r);
        self
    }

    /// Enable/disable post-failover re-replication (ablation switch).
    /// On (the default), a survivor that promotes a dead server's shard
    /// streams the missing replica state to the recomputed ring
    /// successors in bounded chunks, restoring the replication factor
    /// mid-run — so a later server death (after the sync completes) is
    /// also survivable. Off recovers the PR 3 behavior: the ring shrinks
    /// and R stays degraded until the run ends. When not set explicitly,
    /// the `SWIFTT_REREPLICATION` environment variable (`0`/`off`/`false`
    /// to disable) chooses, defaulting to on.
    pub fn re_replication(mut self, on: bool) -> Self {
        self.re_replication = Some(on);
        self
    }

    /// Enable the durable checkpoint/WAL tier: every server appends its
    /// shard mutations to a write-ahead log on the simulated parallel
    /// filesystem, flushed every `interval` logged operations and
    /// periodically compacted into checkpoint segments. While the tier is
    /// on, a shard that loses *all* its in-memory holders (even with
    /// `replication(1)`) is restored from the filesystem instead of
    /// aborting the run. `0` disables the tier. When not set explicitly,
    /// the `SWIFTT_CHECKPOINT` environment variable chooses: `off`/`0`
    /// disables, `on` enables at the default interval, a number sets the
    /// interval (so `SWIFTT_CHECKPOINT=1` forces a flush per logged op —
    /// the per-task-logging worst case). Default: off.
    pub fn checkpoint(mut self, interval: usize) -> Self {
        self.checkpoint = Some(interval);
        self
    }

    /// Resume a previous run from its durable checkpoints: at startup
    /// every server restores its shard from the checkpoint store before
    /// serving (servers whose shard was subsumed into a peer's checkpoint
    /// follow the redirect and carve their part back out). Requires
    /// [`Runtime::checkpoint`] to be on and a [`Runtime::checkpoint_store`]
    /// holding the previous run's state — with a fresh store this is a
    /// no-op and the run starts empty. Replayed client requests dedup
    /// against durably recorded responses, so effects are exactly-once
    /// across the two runs.
    pub fn resume(mut self, on: bool) -> Self {
        self.resume = on;
        self
    }

    /// Use a specific [`Pfs`] instance as the checkpoint store instead of
    /// a private default one. This is how state crosses runs: keep the
    /// `Arc` (or serialize it with [`Pfs::dump`] / revive it with
    /// [`Pfs::restore`]) and hand it to the next run together with
    /// [`Runtime::resume`].
    pub fn checkpoint_store(mut self, fs: Arc<Pfs>) -> Self {
        self.checkpoint_store = Some(fs);
        self
    }

    /// Inject faults (rank kills, message drops/delays) from a
    /// [`FaultPlan`]. Ranks killed by the plan unwind quietly; the run
    /// completes on the survivors and reports the dead ranks in
    /// [`RunResult::killed_ranks`].
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Enable task-lifecycle tracing. Every rank records lifecycle spans
    /// (put, queue wait, delivery, eval, rule firings, steals,
    /// replication syncs, failover recovery) on its own monotonic clock;
    /// the merged timeline lands in [`RunResult::traces`] with latency
    /// percentiles distilled into [`RunResult::latency`], and
    /// [`RunResult::write_trace`] exports Chrome trace-event JSON. Off
    /// (the default), recording is a no-op and costs nothing measurable.
    pub fn tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Retry budget for failed or orphaned tasks: a task is requeued up to
    /// `k` times before the servers quarantine it.
    pub fn max_retries(mut self, k: u32) -> Self {
        self.retry.max_retries = k;
        self
    }

    /// Full control over the ADLB servers' [`adlb::RetryPolicy`].
    pub fn retry_policy(mut self, policy: adlb::RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Register a native library (§III.B): its functions become callable
    /// from leaf templates after `package require <name>` — which the
    /// template's package declaration emits automatically.
    pub fn native_library(mut self, lib: NativeLibrary) -> Self {
        self.natives.push(lib);
        self
    }

    /// Register an in-memory Tcl package (§III.A third benefit: "existing
    /// components built in Tcl can easily be brought into Swift").
    pub fn tcl_package(
        mut self,
        name: impl Into<String>,
        version: impl Into<String>,
        source: impl Into<String>,
    ) -> Self {
        self.tcl_packages
            .push((name.into(), version.into(), source.into()));
        self
    }

    /// Pass a program argument, readable from Swift as `argv("key")` (the
    /// Swift/K-heritage argument interface).
    pub fn arg(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.args.push((key.into(), value.into()));
        self
    }

    /// Queue a tenant program for a multi-tenant run: `name` labels it in
    /// reports, `weight` is its fair share under the servers' weighted
    /// round-robin (relative to the other tenants), and `quota` caps its
    /// queued tasks / in-flight leases (unlimited when `None`). Tenants
    /// run with [`Runtime::run_tenants`]; tenant `i` (in submission
    /// order) gets engine rank `i` to itself while the worker and server
    /// fleets are shared by everyone.
    pub fn submit(
        mut self,
        name: impl Into<String>,
        weight: u32,
        quota: Option<TenantQuota>,
        swift_source: impl Into<String>,
    ) -> Self {
        self.tenants.push(TenantJob {
            name: name.into(),
            weight,
            quota,
            source: swift_source.into(),
        });
        self
    }

    /// Number of worker ranks in this configuration.
    pub fn workers(&self) -> usize {
        self.ranks - self.servers - self.engines
    }

    /// Reject unsatisfiable machine shapes *before* any rank starts.
    /// `engines` is the effective engine count (the builder's, or one per
    /// program in a multi-tenant run).
    fn validate_config(&self, engines: usize) -> Result<(), SwiftTError> {
        let fail = |m: String| Err(SwiftTError::Config(m));
        if self.servers == 0 {
            return fail(format!(
                "need at least one ADLB server (servers = 0, ranks = {}); \
                 checkpointing, data storage and scheduling all live on servers",
                self.ranks
            ));
        }
        if self.servers >= self.ranks {
            return fail(format!(
                "{} server(s) leave no client ranks in a world of {}",
                self.servers, self.ranks
            ));
        }
        if engines == 0 {
            return fail("need at least one engine rank".to_string());
        }
        let clients = self.ranks - self.servers;
        if clients <= engines {
            return fail(format!(
                "no worker ranks: {} ranks minus {} server(s) minus {} engine(s) \
                 leaves no one to execute leaf tasks",
                self.ranks, self.servers, engines
            ));
        }
        if let Some(r) = self.replication {
            if r == 0 {
                return fail("replication factor must be at least 1 (the primary)".to_string());
            }
            if r > self.servers {
                return fail(format!(
                    "replication {r} exceeds the server count {}: each copy \
                     needs its own server rank",
                    self.servers
                ));
            }
        }
        if self.resume && self.effective_checkpoint().is_none() {
            return fail(
                "resume requires the checkpoint tier: enable checkpoint(interval) \
                 (or SWIFTT_CHECKPOINT) so there is a durable image to resume from"
                    .to_string(),
            );
        }
        for job in &self.tenants {
            if let Some(q) = &job.quota {
                if q.max_queued == Some(0) {
                    return fail(format!(
                        "tenant \"{}\": max_queued quota of 0 would reject every put",
                        job.name
                    ));
                }
                if q.max_leases == Some(0) {
                    return fail(format!(
                        "tenant \"{}\": max_leases quota of 0 could never deliver a task",
                        job.name
                    ));
                }
            }
        }
        Ok(())
    }

    /// The effective replication factor: the explicit setting, else the
    /// `SWIFTT_REPLICATION` environment variable (clamped to the server
    /// count so a global matrix export never breaks 1-server machines),
    /// else the default of 2 whenever more than one server can hold a
    /// copy.
    fn effective_replication(&self) -> usize {
        let r = self
            .replication
            .or_else(|| {
                std::env::var("SWIFTT_REPLICATION")
                    .ok()
                    .and_then(|v| v.parse::<usize>().ok())
                    .map(|r| r.clamp(1, self.servers))
            })
            .unwrap_or(if self.servers > 1 { 2 } else { 1 });
        assert!(r >= 1, "replication factor must be at least 1");
        assert!(
            r <= self.servers,
            "replication {r} exceeds the server count {}",
            self.servers
        );
        r
    }

    /// The effective batching switch: the explicit setting, else the
    /// `SWIFTT_BATCHING` environment variable, else on.
    fn effective_batching(&self) -> bool {
        self.batching.unwrap_or_else(|| {
            !std::env::var("SWIFTT_BATCHING")
                .map(|v| matches!(v.as_str(), "0" | "off" | "false"))
                .unwrap_or(false)
        })
    }

    /// The effective re-replication switch: the explicit setting, else
    /// the `SWIFTT_REREPLICATION` environment variable, else on.
    fn effective_re_replication(&self) -> bool {
        self.re_replication.unwrap_or_else(|| {
            !std::env::var("SWIFTT_REREPLICATION")
                .map(|v| matches!(v.as_str(), "0" | "off" | "false"))
                .unwrap_or(false)
        })
    }

    /// The effective checkpoint interval: the explicit setting, else the
    /// `SWIFTT_CHECKPOINT` environment variable, else off. `None` = tier
    /// disabled.
    fn effective_checkpoint(&self) -> Option<usize> {
        let interval = self.checkpoint.or_else(|| {
            std::env::var("SWIFTT_CHECKPOINT")
                .ok()
                .map(|v| match v.as_str() {
                    "off" | "false" | "0" => 0,
                    "on" | "true" => adlb::CHECKPOINT_DEFAULT_INTERVAL,
                    s => s.parse::<usize>().unwrap_or(0),
                })
        })?;
        (interval > 0).then_some(interval)
    }

    fn turbine_config(&self) -> TurbineConfig {
        let checkpoint = self.effective_checkpoint().map(|interval| {
            let fs = self
                .checkpoint_store
                .clone()
                .unwrap_or_else(|| Arc::new(Pfs::new(PfsConfig::default())));
            adlb::CheckpointConfig::new(fs)
                .interval(interval)
                .resume(self.resume)
        });
        TurbineConfig {
            servers: self.servers,
            engines: self.engines,
            policy: self.policy,
            server: adlb::ServerConfig {
                steal_enabled: self.steal,
                retry: self.retry,
                replication: self.effective_replication(),
                re_replicate: self.effective_re_replication(),
                checkpoint,
                ..adlb::ServerConfig::default()
            },
            batching: self.effective_batching(),
        }
    }

    /// Compile and run Swift source on this machine.
    pub fn run(&self, swift_source: &str) -> Result<RunResult, SwiftTError> {
        let program = stc::compile(swift_source)?;
        self.run_turbine(TurbineProgram {
            preamble: program.preamble,
            main: program.main,
            args: self.args.clone(),
        })
    }

    /// Run already-compiled (or hand-written) Turbine code.
    pub fn run_turbine(&self, program: TurbineProgram) -> Result<RunResult, SwiftTError> {
        self.validate_config(self.engines)?;
        let config = self.turbine_config();
        config.validate(self.ranks);
        let setup = self.interp_setup();
        let (result, _per_rank, _streamed) = self.run_world(&config, |comm| {
            turbine::run_rank_with(comm, &config, &program, &setup)
        })?;
        Ok(result)
    }

    /// Compile every program queued with [`Runtime::submit`] and run them
    /// concurrently over one shared machine: tenant `i` gets engine rank
    /// `i`, the servers schedule leaf work across tenants by weight and
    /// enforce each tenant's quota, and the workers execute everyone's
    /// tasks in per-tenant interpreters. Per-tenant output, accounting and
    /// latency land in [`RunResult::tenants`]; a tenant's program failure
    /// is contained there instead of failing the run.
    pub fn run_tenants(&self) -> Result<RunResult, SwiftTError> {
        if self.tenants.is_empty() {
            return Err(SwiftTError::Config(
                "no tenant programs: submit() at least one before run_tenants()".to_string(),
            ));
        }
        let mut programs = Vec::with_capacity(self.tenants.len());
        for (i, job) in self.tenants.iter().enumerate() {
            let compiled = stc::compile(&job.source)?;
            let mut spec = TenantSpec::new(i as u32, &job.name).weight(job.weight);
            if let Some(q) = job.quota {
                spec = spec.quota(q);
            }
            programs.push((
                spec,
                TurbineProgram {
                    preamble: compiled.preamble,
                    main: compiled.main,
                    args: self.args.clone(),
                },
            ));
        }
        self.run_turbine_tenants(programs)
    }

    /// Multi-tenant analogue of [`Runtime::run_turbine`]: run
    /// already-compiled programs, one per tenant. The builder's engine
    /// count is ignored — multi-tenant runs use exactly one engine per
    /// program.
    pub fn run_turbine_tenants(
        &self,
        programs: Vec<(TenantSpec, TurbineProgram)>,
    ) -> Result<RunResult, SwiftTError> {
        self.validate_config(programs.len())?;
        let mut config = self.turbine_config();
        config.engines = programs.len();
        config.server.tenants = programs.iter().map(|(s, _)| s.clone()).collect();
        let setup = self.interp_setup();
        let (mut result, per_rank, streamed) = self.run_world(&config, |comm| {
            turbine::run_rank_tenants_with(comm, &config, &programs, &setup)
        })?;

        // Per-tenant accounting rows, merged across servers.
        let mut rows: Vec<(u32, TenantStats)> = Vec::new();
        for o in per_rank.iter().flatten() {
            merge_tenant_rows(&mut rows, &o.tenant_rows);
        }
        let contended_total: u64 = rows.iter().map(|(_, s)| s.delivered_contended).sum();

        let mut reports = Vec::with_capacity(programs.len());
        for (spec, _) in &programs {
            // Per-tenant stdout in rank order: a survivor's locally
            // captured per-tenant buffer is authoritative; a killed
            // rank's contribution is what it streamed to the servers
            // under this tenant's tag.
            let mut stdout = String::new();
            for (rank, o) in per_rank.iter().enumerate() {
                match o {
                    Some(ro) => {
                        if let Some((_, s)) = ro.tenant_stdout.iter().find(|(t, _)| *t == spec.id) {
                            stdout.push_str(s);
                        }
                    }
                    None => {
                        if let Some(s) = streamed.get(&rank).and_then(|m| m.get(&spec.id)) {
                            stdout.push_str(s);
                        }
                    }
                }
            }
            let stats = rows
                .iter()
                .find(|(t, _)| *t == spec.id)
                .map(|(_, s)| *s)
                .unwrap_or_default();
            let share_of_delivered = (contended_total > 0)
                .then(|| stats.delivered_contended as f64 / contended_total as f64);
            // The tenant's engine holds its program error; worker-side
            // containment messages are prefixed with the tenant id.
            let engine_err = per_rank
                .get(spec.id as usize)
                .and_then(|o| o.as_ref())
                .and_then(|o| o.program_error.clone());
            let worker_err = per_rank.iter().flatten().find_map(|o| {
                o.program_error
                    .as_ref()
                    .filter(|e| e.starts_with(&format!("tenant {}", spec.id)))
                    .cloned()
            });
            let latency = if self.tracing {
                LatencyStats::from_durations(tenant_task_durations(&result.traces, spec.id))
            } else {
                None
            };
            reports.push(TenantReport {
                id: spec.id,
                name: spec.name.clone(),
                weight: spec.weight,
                stdout,
                stats,
                share_of_delivered,
                latency,
                error: engine_err.or(worker_err),
            });
        }
        // The rank-order global stdout interleaves tenants arbitrarily;
        // tenant-order concatenation is the deterministic view.
        result.stdout = reports.iter().map(|r| r.stdout.as_str()).collect();
        result.tenants = reports;
        Ok(result)
    }

    /// The engine/worker interpreter setup hook shared by both run paths:
    /// native libraries (§III.B) and in-memory Tcl packages.
    fn interp_setup(&self) -> impl Fn(&mut tclish::Interp) + '_ {
        move |interp: &mut tclish::Interp| {
            for lib in &self.natives {
                lib.install(interp);
            }
            for (name, version, source) in &self.tcl_packages {
                interp.add_package(
                    name,
                    version,
                    PackageInit::Script(std::rc::Rc::from(source.as_str())),
                );
            }
        }
    }

    /// Execute the world and assemble the run-shape-independent parts of
    /// the result. Also returns the raw per-rank outputs (index = rank;
    /// `None` = killed) and the server-tier streams keyed by rank then
    /// tenant, for callers that post-process per tenant.
    #[allow(clippy::type_complexity)]
    fn run_world<F>(
        &self,
        config: &TurbineConfig,
        body: F,
    ) -> Result<
        (
            RunResult,
            Vec<Option<RankOutput>>,
            HashMap<usize, BTreeMap<u32, String>>,
        ),
        SwiftTError,
    >
    where
        F: Fn(mpisim::Comm) -> RankOutput + Sync,
    {
        let start = Instant::now();
        let world = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            World::run_faulty_traced(self.ranks, &self.faults, self.tracing, body)
        }));
        let elapsed = start.elapsed();
        match world {
            Ok(outcome) => {
                let per_rank = outcome.outputs;
                // Streams accumulated on the server tier recover what a
                // killed rank shipped before dying; for survivors the
                // locally captured stdout is authoritative (and, fault
                // free, identical to the streamed copy).
                let mut streamed: HashMap<usize, BTreeMap<u32, String>> = HashMap::new();
                let mut truncated: Vec<usize> = Vec::new();
                for o in per_rank.iter().flatten() {
                    for (r, t, s) in &o.server_streams {
                        let e = streamed.entry(*r).or_default().entry(*t).or_default();
                        if s.len() > e.len() {
                            s.clone_into(e);
                        }
                    }
                    truncated.extend(o.truncated_streams.iter().copied());
                }
                truncated.sort_unstable();
                truncated.dedup();
                let mut stdout = String::new();
                for (rank, o) in per_rank.iter().enumerate() {
                    match o {
                        Some(ro) => stdout.push_str(&ro.stdout),
                        None => {
                            if let Some(m) = streamed.get(&rank) {
                                for s in m.values() {
                                    stdout.push_str(s);
                                }
                            }
                        }
                    }
                }
                let outputs: Vec<_> = per_rank.iter().flatten().cloned().collect();
                let roles = (0..self.ranks)
                    .map(|r| config.role(self.ranks, r))
                    .collect();
                let latency = if self.tracing {
                    Some(LatencyReport::from_traces(&outcome.traces))
                } else {
                    None
                };
                let result = RunResult {
                    stdout,
                    outputs,
                    elapsed,
                    messages: outcome.stats.messages,
                    bytes: outcome.stats.bytes,
                    killed_ranks: outcome.killed,
                    truncated_streams: truncated,
                    roles,
                    traces: outcome.traces,
                    latency,
                    tenants: Vec::new(),
                };
                Ok((result, per_rank, streamed))
            }
            Err(p) => {
                let msg = p
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "rank panicked".to_string());
                Err(SwiftTError::Runtime(msg))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::{NativeArg, NativeLibrary};

    #[test]
    fn workers_count() {
        let rt = Runtime::new(10).servers(2).engines(2);
        assert_eq!(rt.workers(), 6);
    }

    #[test]
    fn native_library_from_swift_leaf() {
        // The paper's Fig. 3 flow: native function → Tcl binding →
        // Swift leaf function → Swift program.
        let lib = NativeLibrary::new("mathlib", "1.0").function("hypot", |args| {
            Ok(NativeArg::Float(args[0].as_f64()?.hypot(args[1].as_f64()?)))
        });
        let r = Runtime::new(3)
            .native_library(lib)
            .run(
                r#"
                (float o) hypot (float x, float y) "mathlib" "1.0" [
                    "set <<o>> [ mathlib::hypot <<x>> <<y>> ]"
                ];
                float h = hypot(3.0, 4.0);
                printf("h = %.1f", h);
            "#,
            )
            .unwrap();
        assert_eq!(r.stdout, "h = 5.0\n");
        // Two worker tasks: the hypot leaf and the printf.
        assert_eq!(r.total_tasks(), 2);
    }

    #[test]
    fn tcl_package_from_swift_leaf() {
        let r = Runtime::new(3)
            .tcl_package(
                "my_package",
                "1.0",
                "proc my_package::f {a b} { return [expr {$a * 100 + $b}] }",
            )
            .run(
                r#"
                (int o) f (int i, int j) "my_package" "1.0" [
                    "set <<o>> [ my_package::f <<i>> <<j>> ]"
                ];
                int v = f(4, 2);
                printf("%d", v);
            "#,
            )
            .unwrap();
        assert_eq!(r.stdout, "402\n");
    }

    #[test]
    fn reinitialize_policy_isolation() {
        // Two python() calls; under Reinitialize the second can't see the
        // first's state, so it must fail. Task errors are *contained*:
        // the NameError task is retried to the budget and quarantined
        // instead of crashing the worker rank — so the machine terminates
        // cleanly and the engine reports the never-satisfied printf as a
        // dataflow deadlock.
        // `b`'s code input depends on `a`, forcing task order a → b on the
        // single worker; only the retained interpreter still has `leak`.
        let src = r#"
            string a = python("leak = 5", "leak");
            string b = python(a, "leak + 1");
            printf("%s %s", a, b);
        "#;
        let retained = Runtime::new(3).policy(InterpPolicy::Retain).run(src);
        assert!(retained.is_ok(), "retain keeps state: {retained:?}");
        assert_eq!(retained.unwrap().stdout, "5 6\n");
        let reinit = Runtime::new(3).policy(InterpPolicy::Reinitialize).run(src);
        match reinit {
            Err(SwiftTError::Runtime(m)) => {
                assert!(m.contains("deadlock"), "quarantine leaves b unfilled: {m}")
            }
            other => panic!("expected dataflow deadlock under Reinitialize, got {other:?}"),
        }
    }
}
