//! # swiftt-core — the public API
//!
//! This crate is the front door of the reproduction of Wozniak et al.,
//! *"Toward Interlanguage Parallel Scripting for Distributed-Memory
//! Scientific Computing"* (CLUSTER 2015): compile a Swift dataflow script
//! with [`stc`], run it on a simulated distributed-memory machine with
//! [`turbine`]/[`adlb`]/[`mpisim`], and collect the output.
//!
//! ```
//! use swiftt_core::Runtime;
//!
//! let result = Runtime::new(4).run(r#"
//!     int x = 6;
//!     int y = x * 7;
//!     printf("the answer is %d", y);
//! "#).unwrap();
//! assert_eq!(result.stdout, "the answer is 42\n");
//! ```
//!
//! ## Interlanguage calls
//!
//! Every path from the paper is available from Swift source:
//!
//! * **Tcl fragments** (§III.A): leaf functions with `<<var>>` templates;
//! * **native code** (§III.B): register a [`NativeLibrary`] of Rust
//!   functions — the analogue of a SWIG-wrapped C/C++/Fortran library —
//!   and call them from leaf templates, including with [`blobutils`]
//!   blobs;
//! * **Python and R** (§III.C): the `python(code, expr)` and
//!   `r(code, expr)` builtins evaluate in embedded interpreters on
//!   workers, with a configurable retain/reinitialize state policy;
//! * **the shell**: `sh(cmd)` runs a command line and captures stdout.

mod native;
mod result;
mod runtime;

pub use native::{NativeArg, NativeFunction, NativeLibrary};
pub use result::{LatencyReport, RunResult, SwiftTError, TenantReport};
pub use runtime::Runtime;

// Re-export the pieces users commonly need alongside the runtime.
pub use adlb::{RetryPolicy, TenantQuota, TenantSpec, TenantStats};
pub use mpisim::{FaultPlan, LatencyStats, RankTrace};
pub use stc::{compile, CompiledProgram};
pub use turbine::{InterpPolicy, RankOutput, Role, TurbineProgram};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_dataflow() {
        let r = Runtime::new(3)
            .run("printf(\"hello from swift\");")
            .unwrap();
        assert_eq!(r.stdout, "hello from swift\n");
    }

    #[test]
    fn compile_errors_are_reported() {
        let err = Runtime::new(3).run("int x = y;").unwrap_err();
        match err {
            SwiftTError::Compile(e) => assert!(e.message.contains("undefined")),
            other => panic!("expected compile error, got {other:?}"),
        }
    }

    #[test]
    fn runtime_errors_are_reported() {
        let err = Runtime::new(3)
            .run("assert(1 == 2, \"math is broken\");")
            .unwrap_err();
        match err {
            SwiftTError::Runtime(msg) => assert!(msg.contains("math is broken"), "{msg}"),
            other => panic!("expected runtime error, got {other:?}"),
        }
    }
}
