//! Native-code libraries: the SWIG path of §III.B.
//!
//! In the paper, a C/C++/Fortran library is compiled as a loadable object,
//! SWIG generates Tcl bindings for its functions, and those bindings are
//! packaged so Swift leaf functions can call them (Fig. 3). Here the
//! "native code" is Rust: a [`NativeLibrary`] holds plain Rust functions,
//! and registering it creates the same runtime-visible artifact SWIG
//! would — a Tcl package whose commands call into native code, converting
//! simple types automatically and passing bulk data as blob handles.

use std::sync::Arc;

use blobutils::{Blob, BlobHandle};
use tclish::{Exception, Interp, PackageInit};

/// A value crossing the script↔native boundary. Mirrors the paper's rule
/// that "simple types (numbers, strings) must be used", plus blobs for
/// bulk binary data.
#[derive(Debug, Clone, PartialEq)]
pub enum NativeArg {
    Int(i64),
    Float(f64),
    Str(String),
    Blob(Blob),
}

impl NativeArg {
    /// Numeric view (ints widen to f64).
    pub fn as_f64(&self) -> Result<f64, String> {
        match self {
            NativeArg::Int(i) => Ok(*i as f64),
            NativeArg::Float(f) => Ok(*f),
            other => Err(format!("expected a number, got {other:?}")),
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Result<i64, String> {
        match self {
            NativeArg::Int(i) => Ok(*i),
            other => Err(format!("expected an integer, got {other:?}")),
        }
    }

    /// String view.
    pub fn as_str(&self) -> Result<&str, String> {
        match self {
            NativeArg::Str(s) => Ok(s),
            other => Err(format!("expected a string, got {other:?}")),
        }
    }

    /// Blob view.
    pub fn as_blob(&self) -> Result<&Blob, String> {
        match self {
            NativeArg::Blob(b) => Ok(b),
            other => Err(format!("expected a blob, got {other:?}")),
        }
    }
}

type NativeFnImpl = Arc<dyn Fn(&[NativeArg]) -> Result<NativeArg, String> + Send + Sync>;

/// One exported native function.
#[derive(Clone)]
pub struct NativeFunction {
    /// Command name within the package (callable as `pkg::name`).
    pub name: String,
    func: NativeFnImpl,
}

/// A named, versioned collection of native functions — the analogue of
/// one SWIG-wrapped shared library packaged for Tcl.
#[derive(Clone)]
pub struct NativeLibrary {
    /// Package name (`package require <name>` in leaf templates).
    pub name: String,
    /// Package version.
    pub version: String,
    functions: Vec<NativeFunction>,
}

impl NativeLibrary {
    /// Start a library.
    pub fn new(name: impl Into<String>, version: impl Into<String>) -> Self {
        NativeLibrary {
            name: name.into(),
            version: version.into(),
            functions: Vec::new(),
        }
    }

    /// Export a function (builder style).
    pub fn function<F>(mut self, name: impl Into<String>, f: F) -> Self
    where
        F: Fn(&[NativeArg]) -> Result<NativeArg, String> + Send + Sync + 'static,
    {
        self.functions.push(NativeFunction {
            name: name.into(),
            func: Arc::new(f),
        });
        self
    }

    /// Number of exported functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Whether the library exports nothing.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// Install this library into an interpreter as an in-memory package
    /// (the "static package" answer to the many-small-files problem, §IV).
    pub fn install(&self, interp: &mut Interp) {
        let lib = self.clone();
        interp.add_package(
            &self.name,
            &self.version,
            PackageInit::Native(std::rc::Rc::new(move |interp: &mut Interp| {
                for f in &lib.functions {
                    let func = f.func.clone();
                    let cmd_name = format!("{}::{}", lib.name, f.name);
                    interp.register(&cmd_name, move |interp, argv| {
                        call_native(interp, &func, &argv[1..], &argv[0])
                    });
                }
            })),
        );
    }
}

/// Bridge one invocation: parse Tcl words into [`NativeArg`]s (resolving
/// blob handles through the rank's registry), call the Rust function, and
/// convert the result back.
fn call_native(
    interp: &mut Interp,
    func: &NativeFnImpl,
    argv: &[String],
    cmd: &str,
) -> tclish::TclResult {
    let ctx: Option<turbine::SharedCtx> = interp.context_get();
    let mut args = Vec::with_capacity(argv.len());
    for a in argv {
        args.push(parse_arg(a, &ctx)?);
    }
    let result = func(&args).map_err(|e| Exception::error(format!("{cmd}: {e}")))?;
    match result {
        NativeArg::Int(i) => Ok(i.to_string()),
        NativeArg::Float(f) => Ok(tclish::format_double(f)),
        NativeArg::Str(s) => Ok(s),
        NativeArg::Blob(b) => {
            let ctx = ctx.ok_or_else(|| {
                Exception::error(format!("{cmd}: no blob registry in this interpreter"))
            })?;
            let c = ctx.borrow();
            let h = c.blobs.borrow_mut().insert(b);
            Ok(h.to_token())
        }
    }
}

fn parse_arg(word: &str, ctx: &Option<turbine::SharedCtx>) -> Result<NativeArg, Exception> {
    if let Ok(h) = BlobHandle::parse(word) {
        let ctx = ctx
            .as_ref()
            .ok_or_else(|| Exception::error("blob argument without a registry"))?;
        let c = ctx.borrow();
        let blobs = c.blobs.borrow();
        let b = blobs
            .get(h)
            .map_err(|e| Exception::error(e.to_string()))?
            .clone();
        return Ok(NativeArg::Blob(b));
    }
    if let Ok(i) = word.parse::<i64>() {
        return Ok(NativeArg::Int(i));
    }
    if let Ok(f) = word.parse::<f64>() {
        return Ok(NativeArg::Float(f));
    }
    Ok(NativeArg::Str(word.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_functions() {
        let lib = NativeLibrary::new("m", "1.0")
            .function("one", |_| Ok(NativeArg::Int(1)))
            .function("two", |_| Ok(NativeArg::Int(2)));
        assert_eq!(lib.len(), 2);
        assert!(!lib.is_empty());
    }

    #[test]
    fn install_and_call_scalar() {
        let mut interp = Interp::new();
        NativeLibrary::new("m", "1.0")
            .function("add", |args| {
                Ok(NativeArg::Float(args[0].as_f64()? + args[1].as_f64()?))
            })
            .install(&mut interp);
        interp.eval("package require m").unwrap();
        assert_eq!(interp.eval("m::add 1.5 2").unwrap(), "3.5");
    }

    #[test]
    fn string_arguments_pass_through() {
        let mut interp = Interp::new();
        NativeLibrary::new("m", "1.0")
            .function("shout", |args| {
                Ok(NativeArg::Str(args[0].as_str()?.to_uppercase()))
            })
            .install(&mut interp);
        interp.eval("package require m").unwrap();
        assert_eq!(interp.eval("m::shout hello").unwrap(), "HELLO");
    }

    #[test]
    fn errors_become_tcl_errors() {
        let mut interp = Interp::new();
        NativeLibrary::new("m", "1.0")
            .function("fail", |_| Err("native boom".into()))
            .install(&mut interp);
        interp.eval("package require m").unwrap();
        let err = interp.eval("m::fail").unwrap_err();
        assert!(err.message.contains("native boom"));
    }

    #[test]
    fn package_not_loaded_until_required() {
        let mut interp = Interp::new();
        NativeLibrary::new("m", "1.0")
            .function("f", |_| Ok(NativeArg::Int(0)))
            .install(&mut interp);
        assert!(interp.eval("m::f").is_err());
        interp.eval("package require m").unwrap();
        assert!(interp.eval("m::f").is_ok());
    }
}
