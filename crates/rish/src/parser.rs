//! Recursive-descent parser for the R subset. Everything is an expression.

use crate::lexer::{tokenize, Tok};
use crate::value::RError;

/// Function parameter with optional default.
#[derive(Debug, Clone)]
pub struct Param {
    pub name: String,
    pub default: Option<Expr>,
}

#[derive(Debug, Clone)]
pub enum Expr {
    Num(f64),
    Str(String),
    Bool(bool),
    Null,
    Na,
    Name(String),
    Call(Box<Expr>, Vec<Expr>),
    Index(Box<Expr>, Box<Expr>),
    Unary(&'static str, Box<Expr>),
    Binary(&'static str, Box<Expr>, Box<Expr>),
    Assign(String, Box<Expr>),
    AssignIndex(String, Box<Expr>, Box<Expr>),
    If(Box<Expr>, Box<Expr>, Option<Box<Expr>>),
    For(String, Box<Expr>, Box<Expr>),
    While(Box<Expr>, Box<Expr>),
    Repeat(Box<Expr>),
    Block(Vec<Expr>),
    Function(Vec<Param>, Box<Expr>),
    Break,
    Next,
    Return(Option<Box<Expr>>),
}

fn err<T>(msg: impl std::fmt::Display) -> Result<T, RError> {
    Err(RError::new(format!("syntax error: {msg}")))
}

/// Parse a program: expressions separated by newlines / `;`.
pub fn parse_program(src: &str) -> Result<Vec<Expr>, RError> {
    let toks = tokenize(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut out = Vec::new();
    loop {
        p.skip_separators();
        if p.at_end() {
            break;
        }
        out.push(p.expr()?);
    }
    Ok(out)
}

/// Parse a single expression.
pub fn parse_expression(src: &str) -> Result<Expr, RError> {
    let toks = tokenize(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.skip_separators();
    let e = p.expr()?;
    p.skip_separators();
    if !p.at_end() {
        return err(format!("trailing input at {:?}", p.peek()));
    }
    Ok(e)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }
    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }
    fn eat_op(&mut self, op: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Op(o)) if *o == op) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
    fn expect_op(&mut self, op: &'static str) -> Result<(), RError> {
        if self.eat_op(op) {
            Ok(())
        } else {
            err(format!("expected '{op}', found {:?}", self.peek()))
        }
    }
    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Kw(k)) if *k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
    fn skip_newlines(&mut self) {
        while matches!(self.peek(), Some(Tok::Newline)) {
            self.pos += 1;
        }
    }
    fn skip_separators(&mut self) {
        while matches!(self.peek(), Some(Tok::Newline) | Some(Tok::Op(";"))) {
            self.pos += 1;
        }
    }

    // Precedence (low→high): assign, or, and, not, comparison, add, mul,
    // range, unary-, power, postfix.

    fn expr(&mut self) -> Result<Expr, RError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, RError> {
        let lhs = self.or_expr()?;
        if self.eat_op("<-") || self.eat_op("=") {
            self.skip_newlines();
            let rhs = self.assignment()?; // right-assoc
            return match lhs {
                Expr::Name(n) => Ok(Expr::Assign(n, Box::new(rhs))),
                Expr::Index(obj, idx) => match *obj {
                    Expr::Name(n) => Ok(Expr::AssignIndex(n, idx, Box::new(rhs))),
                    _ => err("invalid assignment target (only x[i] <- v supported)"),
                },
                _ => err("invalid assignment target"),
            };
        }
        Ok(lhs)
    }

    fn or_expr(&mut self) -> Result<Expr, RError> {
        let mut lhs = self.and_expr()?;
        loop {
            let op = if self.eat_op("||") {
                "||"
            } else if self.eat_op("|") {
                "|"
            } else {
                break;
            };
            self.skip_newlines();
            let rhs = self.and_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, RError> {
        let mut lhs = self.not_expr()?;
        loop {
            let op = if self.eat_op("&&") {
                "&&"
            } else if self.eat_op("&") {
                "&"
            } else {
                break;
            };
            self.skip_newlines();
            let rhs = self.not_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, RError> {
        if self.eat_op("!") {
            self.skip_newlines();
            return Ok(Expr::Unary("!", Box::new(self.not_expr()?)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, RError> {
        let lhs = self.additive()?;
        for op in ["==", "!=", "<=", ">=", "<", ">"] {
            if matches!(self.peek(), Some(Tok::Op(o)) if *o == op) {
                self.bump();
                self.skip_newlines();
                let rhs = self.additive()?;
                let op: &'static str = ["==", "!=", "<=", ">=", "<", ">"]
                    .iter()
                    .find(|o| **o == op)
                    .unwrap();
                return Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)));
            }
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, RError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Op("+")) => "+",
                Some(Tok::Op("-")) => "-",
                _ => break,
            };
            self.bump();
            self.skip_newlines();
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, RError> {
        let mut lhs = self.range()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Op("*")) => "*",
                Some(Tok::Op("/")) => "/",
                Some(Tok::Op("%%")) => "%%",
                Some(Tok::Op("%/%")) => "%/%",
                _ => break,
            };
            self.bump();
            self.skip_newlines();
            let rhs = self.range()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn range(&mut self) -> Result<Expr, RError> {
        let lhs = self.unary()?;
        if self.eat_op(":") {
            self.skip_newlines();
            let rhs = self.unary()?;
            return Ok(Expr::Binary(":", Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, RError> {
        if self.eat_op("-") {
            self.skip_newlines();
            return Ok(Expr::Unary("-", Box::new(self.unary()?)));
        }
        if self.eat_op("+") {
            self.skip_newlines();
            return self.unary();
        }
        self.power()
    }

    fn power(&mut self) -> Result<Expr, RError> {
        let base = self.postfix()?;
        if self.eat_op("^") {
            self.skip_newlines();
            let exp = self.unary()?; // right-assoc
            return Ok(Expr::Binary("^", Box::new(base), Box::new(exp)));
        }
        Ok(base)
    }

    fn postfix(&mut self) -> Result<Expr, RError> {
        let mut e = self.atom()?;
        loop {
            if self.eat_op("(") {
                self.skip_newlines();
                let mut args = Vec::new();
                if !self.eat_op(")") {
                    loop {
                        args.push(self.expr()?);
                        self.skip_newlines();
                        if self.eat_op(")") {
                            break;
                        }
                        self.expect_op(",")?;
                        self.skip_newlines();
                    }
                }
                e = Expr::Call(Box::new(e), args);
            } else if self.eat_op("[") {
                self.skip_newlines();
                let idx = self.expr()?;
                self.skip_newlines();
                self.expect_op("]")?;
                e = Expr::Index(Box::new(e), Box::new(idx));
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn atom(&mut self) -> Result<Expr, RError> {
        match self.bump() {
            Some(Tok::Num(v)) => Ok(Expr::Num(v)),
            Some(Tok::Str(s)) => Ok(Expr::Str(s)),
            Some(Tok::Name(n)) => Ok(Expr::Name(n)),
            Some(Tok::Kw("TRUE")) => Ok(Expr::Bool(true)),
            Some(Tok::Kw("FALSE")) => Ok(Expr::Bool(false)),
            Some(Tok::Kw("NULL")) => Ok(Expr::Null),
            Some(Tok::Kw("NA")) => Ok(Expr::Na),
            Some(Tok::Kw("break")) => Ok(Expr::Break),
            Some(Tok::Kw("next")) => Ok(Expr::Next),
            Some(Tok::Kw("return")) => {
                if self.eat_op("(") {
                    self.skip_newlines();
                    if self.eat_op(")") {
                        return Ok(Expr::Return(None));
                    }
                    let v = self.expr()?;
                    self.skip_newlines();
                    self.expect_op(")")?;
                    Ok(Expr::Return(Some(Box::new(v))))
                } else {
                    Ok(Expr::Return(None))
                }
            }
            Some(Tok::Kw("if")) => {
                self.expect_op("(")?;
                self.skip_newlines();
                let cond = self.expr()?;
                self.skip_newlines();
                self.expect_op(")")?;
                self.skip_newlines();
                let then = self.expr()?;
                // Allow `else` on the next line (more lenient than R's REPL).
                let save = self.pos;
                self.skip_separators();
                if self.eat_kw("else") {
                    self.skip_newlines();
                    let orelse = self.expr()?;
                    Ok(Expr::If(
                        Box::new(cond),
                        Box::new(then),
                        Some(Box::new(orelse)),
                    ))
                } else {
                    self.pos = save;
                    Ok(Expr::If(Box::new(cond), Box::new(then), None))
                }
            }
            Some(Tok::Kw("for")) => {
                self.expect_op("(")?;
                let var = match self.bump() {
                    Some(Tok::Name(n)) => n,
                    other => return err(format!("expected loop variable, got {other:?}")),
                };
                if !self.eat_kw("in") {
                    return err("expected 'in' in for(...)");
                }
                let seq = self.expr()?;
                self.expect_op(")")?;
                self.skip_newlines();
                let body = self.expr()?;
                Ok(Expr::For(var, Box::new(seq), Box::new(body)))
            }
            Some(Tok::Kw("while")) => {
                self.expect_op("(")?;
                self.skip_newlines();
                let cond = self.expr()?;
                self.skip_newlines();
                self.expect_op(")")?;
                self.skip_newlines();
                let body = self.expr()?;
                Ok(Expr::While(Box::new(cond), Box::new(body)))
            }
            Some(Tok::Kw("repeat")) => {
                self.skip_newlines();
                let body = self.expr()?;
                Ok(Expr::Repeat(Box::new(body)))
            }
            Some(Tok::Kw("function")) => {
                self.expect_op("(")?;
                self.skip_newlines();
                let mut params = Vec::new();
                if !self.eat_op(")") {
                    loop {
                        let name = match self.bump() {
                            Some(Tok::Name(n)) => n,
                            other => return err(format!("expected parameter name, got {other:?}")),
                        };
                        let default = if self.eat_op("=") {
                            Some(self.expr()?)
                        } else {
                            None
                        };
                        params.push(Param { name, default });
                        self.skip_newlines();
                        if self.eat_op(")") {
                            break;
                        }
                        self.expect_op(",")?;
                        self.skip_newlines();
                    }
                }
                self.skip_newlines();
                let body = self.expr()?;
                Ok(Expr::Function(params, Box::new(body)))
            }
            Some(Tok::Op("(")) => {
                self.skip_newlines();
                let e = self.expr()?;
                self.skip_newlines();
                self.expect_op(")")?;
                Ok(e)
            }
            Some(Tok::Op("{")) => {
                let mut body = Vec::new();
                loop {
                    self.skip_separators();
                    if self.eat_op("}") {
                        break;
                    }
                    if self.at_end() {
                        return err("missing '}'");
                    }
                    body.push(self.expr()?);
                }
                Ok(Expr::Block(body))
            }
            other => err(format!("unexpected token {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_forms() {
        assert!(matches!(
            parse_expression("x <- 1").unwrap(),
            Expr::Assign(..)
        ));
        assert!(matches!(
            parse_expression("x = 1").unwrap(),
            Expr::Assign(..)
        ));
        assert!(matches!(
            parse_expression("x[2] <- 5").unwrap(),
            Expr::AssignIndex(..)
        ));
    }

    #[test]
    fn range_precedence() {
        // 1:3+1 parses as (1:3)+1 in R.
        let e = parse_expression("1:3+1").unwrap();
        assert!(matches!(e, Expr::Binary("+", ..)));
        // 1:2*3 parses as (1:2)*3.
        let e = parse_expression("1:2*3").unwrap();
        assert!(matches!(e, Expr::Binary("*", ..)));
    }

    #[test]
    fn function_with_defaults() {
        let e = parse_expression("function(x, n = 2) x ^ n").unwrap();
        match e {
            Expr::Function(params, _) => {
                assert_eq!(params.len(), 2);
                assert!(params[1].default.is_some());
            }
            other => panic!("expected function, got {other:?}"),
        }
    }

    #[test]
    fn if_else_across_lines() {
        let prog = parse_program("if (x > 0) {\n  1\n} else {\n  2\n}").unwrap();
        assert_eq!(prog.len(), 1);
        assert!(matches!(&prog[0], Expr::If(_, _, Some(_))));
    }

    #[test]
    fn program_splits_statements() {
        let prog = parse_program("x <- 1\ny <- 2; z <- 3").unwrap();
        assert_eq!(prog.len(), 3);
    }

    #[test]
    fn call_args_span_lines() {
        let e = parse_expression("c(1,\n  2,\n  3)").unwrap();
        assert!(matches!(e, Expr::Call(_, args) if args.len() == 3));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_expression("1 +").is_err());
        assert!(parse_expression("for x in 1:3").is_err());
        assert!(parse_expression("{ 1").is_err());
    }
}
