//! R values: vectors all the way down.

use std::rc::Rc;

use crate::parser::{Expr, Param};

/// Error raised during parsing or evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RError {
    /// Message in R's style (`object 'x' not found`, ...).
    pub message: String,
}

impl RError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        RError {
            message: msg.into(),
        }
    }
}

impl std::fmt::Display for RError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Error: {}", self.message)
    }
}

impl std::error::Error for RError {}

/// A user-defined function (closure over the global environment).
#[derive(Debug)]
pub struct RFunction {
    pub params: Vec<Param>,
    pub body: Expr,
}

/// An R value.
#[derive(Debug, Clone)]
pub enum RValue {
    /// `NULL` — the empty value.
    Null,
    /// A numeric vector (R's default numeric type is double).
    Num(Vec<f64>),
    /// A character vector.
    Str(Vec<String>),
    /// A logical vector.
    Logical(Vec<bool>),
    /// A function value.
    Function(Rc<RFunction>),
}

impl RValue {
    /// Scalar numeric constructor.
    pub fn scalar(v: f64) -> Self {
        RValue::Num(vec![v])
    }

    /// Scalar string constructor.
    pub fn string(s: impl Into<String>) -> Self {
        RValue::Str(vec![s.into()])
    }

    /// Vector length (`length()`).
    pub fn len(&self) -> usize {
        match self {
            RValue::Null => 0,
            RValue::Num(v) => v.len(),
            RValue::Str(v) => v.len(),
            RValue::Logical(v) => v.len(),
            RValue::Function(_) => 1,
        }
    }

    /// True when `length()` is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Numeric view; logicals coerce to 0/1 (as in R).
    pub fn as_nums(&self) -> Result<Vec<f64>, RError> {
        match self {
            RValue::Num(v) => Ok(v.clone()),
            RValue::Logical(v) => Ok(v.iter().map(|&b| b as i64 as f64).collect()),
            RValue::Null => Ok(vec![]),
            other => Err(RError::new(format!(
                "cannot coerce {} to numeric",
                other.kind()
            ))),
        }
    }

    /// Single-number view (errors unless length 1).
    pub fn as_scalar(&self) -> Result<f64, RError> {
        let v = self.as_nums()?;
        if v.len() != 1 {
            return Err(RError::new(format!(
                "expected a single value, got length {}",
                v.len()
            )));
        }
        Ok(v[0])
    }

    /// Condition view: first element's truthiness, as `if` does.
    pub fn as_condition(&self) -> Result<bool, RError> {
        match self {
            RValue::Logical(v) if !v.is_empty() => Ok(v[0]),
            RValue::Num(v) if !v.is_empty() => Ok(v[0] != 0.0),
            _ => Err(RError::new("argument is not interpretable as logical")),
        }
    }

    /// The `class()`-style name for errors.
    pub fn kind(&self) -> &'static str {
        match self {
            RValue::Null => "NULL",
            RValue::Num(_) => "numeric",
            RValue::Str(_) => "character",
            RValue::Logical(_) => "logical",
            RValue::Function(_) => "function",
        }
    }

    /// Coerce to character (`as.character`, `paste` semantics).
    pub fn as_strings(&self) -> Vec<String> {
        match self {
            RValue::Null => vec![],
            RValue::Num(v) => v.iter().map(|n| format_num(*n)).collect(),
            RValue::Str(v) => v.clone(),
            RValue::Logical(v) => v
                .iter()
                .map(|b| if *b { "TRUE" } else { "FALSE" }.to_string())
                .collect(),
            RValue::Function(_) => vec!["<function>".to_string()],
        }
    }

    /// Space-joined display form — what the Swift/T leaf returns and what
    /// our `print` shows (without R's `[1]` index gutters, which carry no
    /// data).
    pub fn to_display(&self) -> String {
        match self {
            RValue::Null => "NULL".to_string(),
            _ => self.as_strings().join(" "),
        }
    }
}

/// Format a double the way R prints it (up to 7 significant digits,
/// integers without a decimal point).
pub fn format_num(v: f64) -> String {
    if v.is_nan() {
        return "NaN".to_string();
    }
    if v.is_infinite() {
        return if v > 0.0 { "Inf" } else { "-Inf" }.to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        return format!("{}", v as i64);
    }
    let s = format!("{:.7}", v);
    let s = s.trim_end_matches('0').trim_end_matches('.');
    s.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(RValue::Num(vec![1.0, 2.5]).to_display(), "1 2.5");
        assert_eq!(
            RValue::Logical(vec![true, false]).to_display(),
            "TRUE FALSE"
        );
        assert_eq!(RValue::Null.to_display(), "NULL");
        assert_eq!(RValue::string("hi").to_display(), "hi");
    }

    #[test]
    fn numeric_coercion() {
        assert_eq!(
            RValue::Logical(vec![true, false]).as_nums().unwrap(),
            vec![1.0, 0.0]
        );
        assert!(RValue::string("x").as_nums().is_err());
    }

    #[test]
    fn scalar_checks() {
        assert_eq!(RValue::scalar(4.0).as_scalar().unwrap(), 4.0);
        assert!(RValue::Num(vec![1.0, 2.0]).as_scalar().is_err());
    }

    #[test]
    fn num_formatting() {
        assert_eq!(format_num(3.0), "3");
        assert_eq!(format_num(3.25), "3.25");
        assert_eq!(format_num(1.0 / 3.0), "0.3333333");
    }
}
