//! The R evaluator: environments, vectorized operations, builtins.

use std::collections::HashMap;
use std::rc::Rc;

use crate::parser::{parse_expression, parse_program, Expr};
use crate::value::{RError, RFunction, RValue};

enum Flow {
    Value(RValue),
    Break,
    Next,
    Return(RValue),
}

/// An embedded R interpreter instance.
///
/// Like [`pythonish::Python`], one instance lives on each worker rank and
/// the retain/reinitialize policy of §III.C decides whether its global
/// environment survives between leaf tasks.
///
/// [`pythonish::Python`]: https://docs.rs/pythonish
pub struct R {
    globals: HashMap<String, RValue>,
    output: String,
    depth: usize,
    rng: u64,
}

impl Default for R {
    fn default() -> Self {
        Self::new()
    }
}

impl R {
    /// A fresh interpreter with an empty global environment.
    pub fn new() -> Self {
        R {
            globals: HashMap::new(),
            output: String::new(),
            depth: 0,
            rng: 0x853C49E6748FEA9B,
        }
    }

    /// Execute a code fragment; returns the value of the last expression.
    pub fn exec(&mut self, code: &str) -> Result<RValue, RError> {
        let prog = parse_program(code)?;
        let mut last = RValue::Null;
        let mut frame = None;
        for e in &prog {
            match self.eval_expr(e, &mut frame)? {
                Flow::Value(v) => last = v,
                Flow::Return(v) => return Ok(v),
                Flow::Break => return Err(RError::new("no loop for break")),
                Flow::Next => return Err(RError::new("no loop for next")),
            }
        }
        Ok(last)
    }

    /// Evaluate a single expression.
    pub fn eval(&mut self, expr: &str) -> Result<RValue, RError> {
        let e = parse_expression(expr)?;
        let mut frame = None;
        match self.eval_expr(&e, &mut frame)? {
            Flow::Value(v) | Flow::Return(v) => Ok(v),
            _ => Err(RError::new("no loop for break/next")),
        }
    }

    /// The Swift/T leaf convention: run `code`, then evaluate `expr` and
    /// return its display string.
    pub fn run(&mut self, code: &str, expr: &str) -> Result<String, RError> {
        if !code.trim().is_empty() {
            self.exec(code)?;
        }
        Ok(self.eval(expr)?.to_display())
    }

    /// Take accumulated `cat`/`print` output.
    pub fn take_output(&mut self) -> String {
        std::mem::take(&mut self.output)
    }

    /// Host-side input marshaling.
    pub fn set_global(&mut self, name: &str, v: RValue) {
        self.globals.insert(name.to_string(), v);
    }

    /// Host-side output marshaling.
    pub fn get_global(&self, name: &str) -> Option<&RValue> {
        self.globals.get(name)
    }

    /// Number of global bindings (observes state retention in tests).
    pub fn globals_len(&self) -> usize {
        self.globals.len()
    }

    fn next_unif(&mut self) -> f64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }

    fn load(&self, name: &str, frame: &Option<HashMap<String, RValue>>) -> Result<RValue, RError> {
        if let Some(f) = frame {
            if let Some(v) = f.get(name) {
                return Ok(v.clone());
            }
        }
        self.globals
            .get(name)
            .cloned()
            .ok_or_else(|| RError::new(format!("object '{name}' not found")))
    }

    fn store(&mut self, name: &str, v: RValue, frame: &mut Option<HashMap<String, RValue>>) {
        match frame {
            Some(f) => {
                f.insert(name.to_string(), v);
            }
            None => {
                self.globals.insert(name.to_string(), v);
            }
        }
    }

    fn eval_expr(
        &mut self,
        e: &Expr,
        frame: &mut Option<HashMap<String, RValue>>,
    ) -> Result<Flow, RError> {
        macro_rules! value {
            ($e:expr) => {
                match self.eval_expr($e, frame)? {
                    Flow::Value(v) => v,
                    other => return Ok(other),
                }
            };
        }
        match e {
            Expr::Num(v) => Ok(Flow::Value(RValue::scalar(*v))),
            Expr::Str(s) => Ok(Flow::Value(RValue::string(s.clone()))),
            Expr::Bool(b) => Ok(Flow::Value(RValue::Logical(vec![*b]))),
            Expr::Null => Ok(Flow::Value(RValue::Null)),
            Expr::Na => Ok(Flow::Value(RValue::Num(vec![f64::NAN]))),
            Expr::Name(n) => Ok(Flow::Value(self.load(n, frame)?)),
            Expr::Break => Ok(Flow::Break),
            Expr::Next => Ok(Flow::Next),
            Expr::Return(inner) => {
                let v = match inner {
                    Some(e) => value!(e),
                    None => RValue::Null,
                };
                Ok(Flow::Return(v))
            }
            Expr::Assign(name, rhs) => {
                let v = value!(rhs);
                self.store(name, v.clone(), frame);
                Ok(Flow::Value(RValue::Null))
            }
            Expr::AssignIndex(name, idx, rhs) => {
                let v = value!(rhs);
                let i = value!(idx).as_scalar()? as i64;
                let mut target = self.load(name, frame)?;
                assign_index(&mut target, i, &v)?;
                self.store(name, target, frame);
                Ok(Flow::Value(RValue::Null))
            }
            Expr::Block(body) => {
                let mut last = RValue::Null;
                for s in body {
                    last = value!(s);
                }
                Ok(Flow::Value(last))
            }
            Expr::If(cond, then, orelse) => {
                if value!(cond).as_condition()? {
                    self.eval_expr(then, frame)
                } else if let Some(o) = orelse {
                    self.eval_expr(o, frame)
                } else {
                    Ok(Flow::Value(RValue::Null))
                }
            }
            Expr::For(var, seq, body) => {
                let seq = value!(seq);
                let items: Vec<RValue> = match &seq {
                    RValue::Num(v) => v.iter().map(|&x| RValue::scalar(x)).collect(),
                    RValue::Str(v) => v.iter().map(|s| RValue::string(s.clone())).collect(),
                    RValue::Logical(v) => v.iter().map(|&b| RValue::Logical(vec![b])).collect(),
                    RValue::Null => vec![],
                    RValue::Function(_) => {
                        return Err(RError::new("invalid for() sequence: function"))
                    }
                };
                for item in items {
                    self.store(var, item, frame);
                    match self.eval_expr(body, frame)? {
                        Flow::Break => break,
                        Flow::Next | Flow::Value(_) => {}
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Value(RValue::Null))
            }
            Expr::While(cond, body) => {
                loop {
                    if !value!(cond).as_condition()? {
                        break;
                    }
                    match self.eval_expr(body, frame)? {
                        Flow::Break => break,
                        Flow::Next | Flow::Value(_) => {}
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Value(RValue::Null))
            }
            Expr::Repeat(body) => {
                let mut guard = 0u64;
                loop {
                    guard += 1;
                    if guard > 100_000_000 {
                        return Err(RError::new("repeat did not terminate"));
                    }
                    match self.eval_expr(body, frame)? {
                        Flow::Break => break,
                        Flow::Next | Flow::Value(_) => {}
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Value(RValue::Null))
            }
            Expr::Function(params, body) => Ok(Flow::Value(RValue::Function(Rc::new(RFunction {
                params: params.clone(),
                body: (**body).clone(),
            })))),
            Expr::Unary(op, inner) => {
                let v = value!(inner);
                match *op {
                    "-" => Ok(Flow::Value(RValue::Num(
                        v.as_nums()?.iter().map(|x| -x).collect(),
                    ))),
                    "!" => {
                        let nums = v.as_nums()?;
                        Ok(Flow::Value(RValue::Logical(
                            nums.iter().map(|&x| x == 0.0).collect(),
                        )))
                    }
                    other => Err(RError::new(format!("unsupported unary {other}"))),
                }
            }
            Expr::Binary(op, l, r) => {
                let lv = value!(l);
                let rv = value!(r);
                Ok(Flow::Value(binary_op(op, &lv, &rv)?))
            }
            Expr::Index(obj, idx) => {
                let o = value!(obj);
                let i = value!(idx);
                Ok(Flow::Value(index_get(&o, &i)?))
            }
            Expr::Call(callee, args) => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(value!(a));
                }
                match callee.as_ref() {
                    Expr::Name(n) => Ok(Flow::Value(self.call(n, argv, frame)?)),
                    other => {
                        // Immediately-invoked function expressions.
                        let f = value!(other.clone().into_boxed().as_ref());
                        match f {
                            RValue::Function(func) => {
                                Ok(Flow::Value(self.call_closure(&func, argv)?))
                            }
                            _ => Err(RError::new("attempt to apply non-function")),
                        }
                    }
                }
            }
        }
    }

    fn call(
        &mut self,
        name: &str,
        argv: Vec<RValue>,
        frame: &Option<HashMap<String, RValue>>,
    ) -> Result<RValue, RError> {
        // User/closure bindings shadow builtins, as in R.
        let binding = if let Some(f) = frame {
            f.get(name)
                .cloned()
                .or_else(|| self.globals.get(name).cloned())
        } else {
            self.globals.get(name).cloned()
        };
        if let Some(RValue::Function(func)) = binding {
            return self.call_closure(&func, argv);
        }
        self.call_builtin(name, argv)
    }

    fn call_closure(&mut self, func: &RFunction, argv: Vec<RValue>) -> Result<RValue, RError> {
        if self.depth >= 200 {
            return Err(RError::new(
                "evaluation nested too deeply (infinite recursion?)",
            ));
        }
        let mut locals = HashMap::new();
        for (i, p) in func.params.iter().enumerate() {
            if let Some(v) = argv.get(i) {
                locals.insert(p.name.clone(), v.clone());
            } else if let Some(d) = &p.default {
                let mut empty = None;
                let v = match self.eval_expr(d, &mut empty)? {
                    Flow::Value(v) => v,
                    _ => RValue::Null,
                };
                locals.insert(p.name.clone(), v);
            } else {
                return Err(RError::new(format!(
                    "argument \"{}\" is missing, with no default",
                    p.name
                )));
            }
        }
        if argv.len() > func.params.len() {
            return Err(RError::new("unused arguments in call"));
        }
        let mut frame = Some(locals);
        self.depth += 1;
        let out = self.eval_expr(&func.body, &mut frame);
        self.depth -= 1;
        match out? {
            Flow::Value(v) | Flow::Return(v) => Ok(v),
            _ => Err(RError::new("no loop for break/next")),
        }
    }

    fn call_builtin(&mut self, name: &str, argv: Vec<RValue>) -> Result<RValue, RError> {
        let nums1 = |argv: &[RValue]| -> Result<Vec<f64>, RError> {
            argv.first()
                .ok_or_else(|| RError::new(format!("{name}: missing argument")))?
                .as_nums()
        };
        let map1 = |argv: &[RValue], f: fn(f64) -> f64| -> Result<RValue, RError> {
            Ok(RValue::Num(nums1(argv)?.into_iter().map(f).collect()))
        };
        match name {
            "c" => {
                // Concatenate with R's coercion: any string → character.
                if argv.iter().any(|v| matches!(v, RValue::Str(_))) {
                    let mut out = Vec::new();
                    for v in &argv {
                        out.extend(v.as_strings());
                    }
                    Ok(RValue::Str(out))
                } else {
                    let mut out = Vec::new();
                    for v in &argv {
                        out.extend(v.as_nums()?);
                    }
                    Ok(RValue::Num(out))
                }
            }
            "length" => Ok(RValue::scalar(
                argv.first().map(|v| v.len()).unwrap_or(0) as f64
            )),
            "sum" => {
                let mut acc = 0.0;
                for v in &argv {
                    acc += v.as_nums()?.iter().sum::<f64>();
                }
                Ok(RValue::scalar(acc))
            }
            "prod" => {
                let mut acc = 1.0;
                for v in &argv {
                    acc *= v.as_nums()?.iter().product::<f64>();
                }
                Ok(RValue::scalar(acc))
            }
            "mean" => {
                let v = nums1(&argv)?;
                if v.is_empty() {
                    return Ok(RValue::scalar(f64::NAN));
                }
                Ok(RValue::scalar(v.iter().sum::<f64>() / v.len() as f64))
            }
            "var" | "sd" => {
                let v = nums1(&argv)?;
                if v.len() < 2 {
                    return Ok(RValue::scalar(f64::NAN));
                }
                let m = v.iter().sum::<f64>() / v.len() as f64;
                let var = v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (v.len() - 1) as f64;
                Ok(RValue::scalar(if name == "var" { var } else { var.sqrt() }))
            }
            "median" => {
                let mut v = nums1(&argv)?;
                if v.is_empty() {
                    return Ok(RValue::scalar(f64::NAN));
                }
                v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                let n = v.len();
                Ok(RValue::scalar(if n % 2 == 1 {
                    v[n / 2]
                } else {
                    (v[n / 2 - 1] + v[n / 2]) / 2.0
                }))
            }
            "quantile" => {
                // quantile(x, p): type-7 (R default) single quantile.
                if argv.len() != 2 {
                    return Err(RError::new("quantile(x, p) needs two arguments"));
                }
                let mut v = argv[0].as_nums()?;
                let p = argv[1].as_scalar()?;
                if v.is_empty() || !(0.0..=1.0).contains(&p) {
                    return Err(RError::new("quantile: bad arguments"));
                }
                v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                let h = (v.len() as f64 - 1.0) * p;
                let lo = h.floor() as usize;
                let hi = h.ceil() as usize;
                Ok(RValue::scalar(v[lo] + (h - lo as f64) * (v[hi] - v[lo])))
            }
            "min" => {
                let mut best = f64::INFINITY;
                for v in &argv {
                    for x in v.as_nums()? {
                        best = best.min(x);
                    }
                }
                Ok(RValue::scalar(best))
            }
            "max" => {
                let mut best = f64::NEG_INFINITY;
                for v in &argv {
                    for x in v.as_nums()? {
                        best = best.max(x);
                    }
                }
                Ok(RValue::scalar(best))
            }
            "sqrt" => map1(&argv, f64::sqrt),
            "abs" => map1(&argv, f64::abs),
            "exp" => map1(&argv, f64::exp),
            "log" => match argv.len() {
                1 => map1(&argv, f64::ln),
                2 => {
                    let base = argv[1].as_scalar()?;
                    Ok(RValue::Num(
                        argv[0].as_nums()?.iter().map(|x| x.log(base)).collect(),
                    ))
                }
                _ => Err(RError::new("log(x, base) takes 1-2 arguments")),
            },
            "floor" => map1(&argv, f64::floor),
            "ceiling" => map1(&argv, f64::ceil),
            "round" => match argv.len() {
                1 => map1(&argv, |x| x.round()),
                2 => {
                    let d = argv[1].as_scalar()?;
                    let m = 10f64.powi(d as i32);
                    Ok(RValue::Num(
                        argv[0]
                            .as_nums()?
                            .iter()
                            .map(|x| (x * m).round() / m)
                            .collect(),
                    ))
                }
                _ => Err(RError::new("round(x, digits) takes 1-2 arguments")),
            },
            "seq" => {
                let (from, to) = match argv.len() {
                    2 | 3 => (argv[0].as_scalar()?, argv[1].as_scalar()?),
                    _ => return Err(RError::new("seq(from, to, by) takes 2-3 arguments")),
                };
                let by = if argv.len() == 3 {
                    argv[2].as_scalar()?
                } else if to >= from {
                    1.0
                } else {
                    -1.0
                };
                if by == 0.0 {
                    return Err(RError::new("seq: by must be nonzero"));
                }
                let mut out = Vec::new();
                let mut x = from;
                let n = ((to - from) / by).floor() as i64;
                for k in 0..=n.max(0) {
                    x = from + by * k as f64;
                    out.push(x);
                }
                let _ = x;
                Ok(RValue::Num(out))
            }
            "rep" => {
                if argv.len() != 2 {
                    return Err(RError::new("rep(x, times) takes two arguments"));
                }
                let times = argv[1].as_scalar()? as usize;
                match &argv[0] {
                    RValue::Str(v) => {
                        let mut out = Vec::new();
                        for _ in 0..times {
                            out.extend(v.iter().cloned());
                        }
                        Ok(RValue::Str(out))
                    }
                    other => {
                        let v = other.as_nums()?;
                        let mut out = Vec::with_capacity(v.len() * times);
                        for _ in 0..times {
                            out.extend(&v);
                        }
                        Ok(RValue::Num(out))
                    }
                }
            }
            "rev" => match &argv[..] {
                [RValue::Str(v)] => Ok(RValue::Str(v.iter().rev().cloned().collect())),
                [v] => Ok(RValue::Num(v.as_nums()?.into_iter().rev().collect())),
                _ => Err(RError::new("rev(x) takes one argument")),
            },
            "sort" => {
                let mut v = nums1(&argv)?;
                v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                Ok(RValue::Num(v))
            }
            "which.max" | "which.min" => {
                let v = nums1(&argv)?;
                if v.is_empty() {
                    return Ok(RValue::Null);
                }
                let idx = if name == "which.max" {
                    v.iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                        .unwrap()
                        .0
                } else {
                    v.iter()
                        .enumerate()
                        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                        .unwrap()
                        .0
                };
                Ok(RValue::scalar((idx + 1) as f64))
            }
            "numeric" => {
                let n = argv
                    .first()
                    .map(|v| v.as_scalar())
                    .transpose()?
                    .unwrap_or(0.0) as usize;
                Ok(RValue::Num(vec![0.0; n]))
            }
            "paste" | "paste0" => {
                let sep = if name == "paste" { " " } else { "" };
                // Element-wise paste with recycling, like R.
                let parts: Vec<Vec<String>> = argv.iter().map(|v| v.as_strings()).collect();
                let n = parts.iter().map(|p| p.len()).max().unwrap_or(0);
                if n == 0 {
                    return Ok(RValue::string(""));
                }
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    let piece: Vec<&str> = parts
                        .iter()
                        .filter(|p| !p.is_empty())
                        .map(|p| p[i % p.len()].as_str())
                        .collect();
                    out.push(piece.join(sep));
                }
                Ok(RValue::Str(out))
            }
            "nchar" => Ok(RValue::Num(
                argv.first()
                    .map(|v| v.as_strings())
                    .unwrap_or_default()
                    .iter()
                    .map(|s| s.chars().count() as f64)
                    .collect(),
            )),
            "toupper" => Ok(RValue::Str(
                argv[0]
                    .as_strings()
                    .iter()
                    .map(|s| s.to_uppercase())
                    .collect(),
            )),
            "tolower" => Ok(RValue::Str(
                argv[0]
                    .as_strings()
                    .iter()
                    .map(|s| s.to_lowercase())
                    .collect(),
            )),
            "as.numeric" | "as.double" => {
                let out: Result<Vec<f64>, RError> = argv[0]
                    .as_strings()
                    .iter()
                    .map(|s| {
                        s.trim()
                            .parse::<f64>()
                            .map_err(|_| RError::new(format!("NAs introduced: '{s}'")))
                    })
                    .collect();
                match &argv[0] {
                    RValue::Num(v) => Ok(RValue::Num(v.clone())),
                    RValue::Logical(v) => {
                        Ok(RValue::Num(v.iter().map(|&b| b as i64 as f64).collect()))
                    }
                    _ => Ok(RValue::Num(out?)),
                }
            }
            "as.character" => Ok(RValue::Str(argv[0].as_strings())),
            "as.integer" => Ok(RValue::Num(
                argv[0].as_nums()?.iter().map(|x| x.trunc()).collect(),
            )),
            "is.null" => Ok(RValue::Logical(vec![matches!(
                argv.first(),
                Some(RValue::Null)
            )])),
            "sapply" => {
                if argv.len() != 2 {
                    return Err(RError::new("sapply(x, f) takes two arguments"));
                }
                let f = match &argv[1] {
                    RValue::Function(f) => f.clone(),
                    _ => return Err(RError::new("sapply: second argument must be a function")),
                };
                let xs = argv[0].as_nums()?;
                let mut out = Vec::with_capacity(xs.len());
                for x in xs {
                    let r = self.call_closure(&f, vec![RValue::scalar(x)])?;
                    out.push(r.as_scalar()?);
                }
                Ok(RValue::Num(out))
            }
            "runif" => {
                let n = argv
                    .first()
                    .map(|v| v.as_scalar())
                    .transpose()?
                    .unwrap_or(1.0) as usize;
                Ok(RValue::Num((0..n).map(|_| self.next_unif()).collect()))
            }
            "set.seed" => {
                self.rng = argv
                    .first()
                    .map(|v| v.as_scalar())
                    .transpose()?
                    .unwrap_or(1.0) as u64
                    | 1;
                Ok(RValue::Null)
            }
            "cat" => {
                let parts: Vec<String> = argv.iter().flat_map(|v| v.as_strings()).collect();
                self.output.push_str(&parts.join(" "));
                Ok(RValue::Null)
            }
            "print" => {
                let v = argv.into_iter().next().unwrap_or(RValue::Null);
                self.output.push_str(&v.to_display());
                self.output.push('\n');
                Ok(v)
            }
            other => Err(RError::new(format!("could not find function \"{other}\""))),
        }
    }
}

/// Vectorized binary operation with recycling.
fn binary_op(op: &str, l: &RValue, r: &RValue) -> Result<RValue, RError> {
    // String equality comparisons.
    if matches!(l, RValue::Str(_)) || matches!(r, RValue::Str(_)) {
        let (a, b) = (l.as_strings(), r.as_strings());
        let n = a.len().max(b.len());
        if a.is_empty() || b.is_empty() {
            return Err(RError::new("comparison with empty vector"));
        }
        return match op {
            "==" => Ok(RValue::Logical(
                (0..n).map(|i| a[i % a.len()] == b[i % b.len()]).collect(),
            )),
            "!=" => Ok(RValue::Logical(
                (0..n).map(|i| a[i % a.len()] != b[i % b.len()]).collect(),
            )),
            _ => Err(RError::new(format!(
                "non-numeric argument to binary operator {op}"
            ))),
        };
    }
    let a = l.as_nums()?;
    let b = r.as_nums()?;
    if op == ":" {
        let from = l.as_scalar()?;
        let to = r.as_scalar()?;
        let mut out = Vec::new();
        if from <= to {
            let mut x = from;
            while x <= to + 1e-12 {
                out.push(x);
                x += 1.0;
            }
        } else {
            let mut x = from;
            while x >= to - 1e-12 {
                out.push(x);
                x -= 1.0;
            }
        }
        return Ok(RValue::Num(out));
    }
    if a.is_empty() || b.is_empty() {
        return Ok(RValue::Num(vec![]));
    }
    let n = a.len().max(b.len());
    let zip = |f: fn(f64, f64) -> f64| -> RValue {
        RValue::Num((0..n).map(|i| f(a[i % a.len()], b[i % b.len()])).collect())
    };
    let cmp = |f: fn(f64, f64) -> bool| -> RValue {
        RValue::Logical((0..n).map(|i| f(a[i % a.len()], b[i % b.len()])).collect())
    };
    Ok(match op {
        "+" => zip(|x, y| x + y),
        "-" => zip(|x, y| x - y),
        "*" => zip(|x, y| x * y),
        "/" => zip(|x, y| x / y),
        "^" => zip(|x, y| x.powf(y)),
        "%%" => zip(|x, y| x - y * (x / y).floor()),
        "%/%" => zip(|x, y| (x / y).floor()),
        "==" => cmp(|x, y| x == y),
        "!=" => cmp(|x, y| x != y),
        "<" => cmp(|x, y| x < y),
        ">" => cmp(|x, y| x > y),
        "<=" => cmp(|x, y| x <= y),
        ">=" => cmp(|x, y| x >= y),
        "&" | "&&" => cmp(|x, y| x != 0.0 && y != 0.0),
        "|" | "||" => cmp(|x, y| x != 0.0 || y != 0.0),
        other => return Err(RError::new(format!("unknown operator {other}"))),
    })
}

/// 1-based vector indexing; logical and vector indices supported.
fn index_get(obj: &RValue, idx: &RValue) -> Result<RValue, RError> {
    match idx {
        RValue::Logical(mask) => {
            let keep = |i: usize| mask[i % mask.len()];
            match obj {
                RValue::Num(v) => Ok(RValue::Num(
                    v.iter()
                        .enumerate()
                        .filter(|(i, _)| keep(*i))
                        .map(|(_, x)| *x)
                        .collect(),
                )),
                RValue::Str(v) => Ok(RValue::Str(
                    v.iter()
                        .enumerate()
                        .filter(|(i, _)| keep(*i))
                        .map(|(_, s)| s.clone())
                        .collect(),
                )),
                _ => Err(RError::new("cannot index this value")),
            }
        }
        _ => {
            let indices = idx.as_nums()?;
            let pick = |len: usize| -> Result<Vec<usize>, RError> {
                indices
                    .iter()
                    .map(|&i| {
                        let i = i as i64;
                        if i < 1 || i as usize > len {
                            Err(RError::new(format!("subscript out of bounds: {i}")))
                        } else {
                            Ok((i - 1) as usize)
                        }
                    })
                    .collect()
            };
            match obj {
                RValue::Num(v) => Ok(RValue::Num(
                    pick(v.len())?.into_iter().map(|i| v[i]).collect(),
                )),
                RValue::Str(v) => Ok(RValue::Str(
                    pick(v.len())?.into_iter().map(|i| v[i].clone()).collect(),
                )),
                RValue::Logical(v) => Ok(RValue::Logical(
                    pick(v.len())?.into_iter().map(|i| v[i]).collect(),
                )),
                _ => Err(RError::new("cannot index this value")),
            }
        }
    }
}

fn assign_index(target: &mut RValue, i: i64, v: &RValue) -> Result<(), RError> {
    if i < 1 {
        return Err(RError::new(format!("subscript out of bounds: {i}")));
    }
    let i = (i - 1) as usize;
    match target {
        RValue::Num(vec) => {
            let x = v.as_scalar()?;
            // R extends vectors on out-of-range assignment, padding with NA.
            if i >= vec.len() {
                vec.resize(i + 1, f64::NAN);
            }
            vec[i] = x;
            Ok(())
        }
        RValue::Str(vec) => {
            let s = v
                .as_strings()
                .into_iter()
                .next()
                .ok_or_else(|| RError::new("replacement has length zero"))?;
            if i >= vec.len() {
                vec.resize(i + 1, "NA".to_string());
            }
            vec[i] = s;
            Ok(())
        }
        _ => Err(RError::new("cannot assign into this value")),
    }
}

// Helper so the parser's Expr can be boxed inline above.
trait IntoBoxed {
    fn into_boxed(self) -> Box<Expr>;
}
impl IntoBoxed for Expr {
    fn into_boxed(self) -> Box<Expr> {
        Box::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(code: &str, expr: &str) -> String {
        R::new().run(code, expr).unwrap()
    }

    #[test]
    fn ranges_and_indexing() {
        assert_eq!(run("", "1:5"), "1 2 3 4 5");
        assert_eq!(run("", "5:1"), "5 4 3 2 1");
        assert_eq!(run("x <- c(10, 20, 30)", "x[2]"), "20");
        assert_eq!(run("x <- c(10, 20, 30)", "x[c(1, 3)]"), "10 30");
        assert_eq!(run("x <- 1:10", "x[x > 7]"), "8 9 10");
    }

    #[test]
    fn one_based_bounds() {
        let mut r = R::new();
        assert!(r.run("x <- c(1)", "x[0]").is_err());
        assert!(r.run("x <- c(1)", "x[2]").is_err());
    }

    #[test]
    fn index_assignment_extends() {
        assert_eq!(run("x <- c(1, 2)\nx[5] <- 9", "length(x)"), "5");
        assert_eq!(run("x <- c(1, 2)\nx[1] <- 7", "x[1]"), "7");
    }

    #[test]
    fn integer_ops() {
        assert_eq!(run("", "7 %/% 2"), "3");
        assert_eq!(run("", "7 %% 2"), "1");
        assert_eq!(run("", "-7 %% 3"), "2"); // R's modulo follows the divisor
        assert_eq!(run("", "2 ^ 10"), "1024");
    }

    #[test]
    fn control_flow() {
        let code = r#"
total <- 0
for (i in 1:10) {
  if (i %% 2 == 0) {
    total <- total + i
  }
}
"#;
        assert_eq!(run(code, "total"), "30");
        assert_eq!(run("x <- 0\nwhile (x < 5) x <- x + 1", "x"), "5");
    }

    #[test]
    fn break_and_next() {
        let code = r#"
s <- 0
for (i in 1:10) {
  if (i == 3) next
  if (i == 6) break
  s <- s + i
}
"#;
        assert_eq!(run(code, "s"), "12");
    }

    #[test]
    fn functions_with_defaults_and_recursion() {
        let code = r#"
powsum <- function(v, p = 2) sum(v ^ p)
fact <- function(n) if (n <= 1) 1 else n * fact(n - 1)
"#;
        let mut r = R::new();
        r.exec(code).unwrap();
        assert_eq!(r.eval("powsum(c(1, 2, 3))").unwrap().to_display(), "14");
        assert_eq!(r.eval("powsum(c(1, 2), 3)").unwrap().to_display(), "9");
        assert_eq!(r.eval("fact(6)").unwrap().to_display(), "720");
    }

    #[test]
    fn locals_do_not_leak() {
        let mut r = R::new();
        r.exec("f <- function() { tmp <- 42\n tmp }").unwrap();
        assert_eq!(r.eval("f()").unwrap().to_display(), "42");
        assert!(r.eval("tmp").is_err());
    }

    #[test]
    fn paste_family() {
        assert_eq!(run("", "paste('a', 'b')"), "a b");
        assert_eq!(run("", "paste0('x', 1:3)"), "x1 x2 x3");
    }

    #[test]
    fn stats_builtins() {
        assert_eq!(run("", "median(c(3, 1, 2))"), "2");
        assert_eq!(run("", "median(c(4, 1, 2, 3))"), "2.5");
        assert_eq!(run("", "quantile(1:5, 0.5)"), "3");
        assert_eq!(run("", "which.max(c(3, 9, 2))"), "2");
        assert_eq!(run("", "var(c(1, 2, 3, 4))"), run("", "sd(c(1,2,3,4)) ^ 2"));
    }

    #[test]
    fn output_capture() {
        let mut r = R::new();
        r.exec("cat('hello', 'world')\nprint(1:3)").unwrap();
        assert_eq!(r.take_output(), "hello world1 2 3\n");
    }

    #[test]
    fn runif_is_deterministic_per_seed() {
        let mut r1 = R::new();
        let mut r2 = R::new();
        r1.exec("set.seed(7)").unwrap();
        r2.exec("set.seed(7)").unwrap();
        assert_eq!(
            r1.eval("runif(3)").unwrap().to_display(),
            r2.eval("runif(3)").unwrap().to_display()
        );
    }

    #[test]
    fn errors_are_r_flavored() {
        let mut r = R::new();
        assert!(r
            .eval("ghost")
            .unwrap_err()
            .message
            .contains("object 'ghost' not found"));
        assert!(r
            .eval("nofn(1)")
            .unwrap_err()
            .message
            .contains("could not find function"));
    }

    #[test]
    fn coercion() {
        assert_eq!(run("", "as.numeric('2.5') + 1"), "3.5");
        assert_eq!(run("", "as.character(c(1, 2))"), "1 2");
        assert_eq!(run("", "sum(c(TRUE, TRUE, FALSE))"), "2");
        assert_eq!(run("", "nchar(c('ab', 'abc'))"), "2 3");
    }
}
