//! Tokenizer for the R subset.

use crate::value::RError;

#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Num(f64),
    Str(String),
    Name(String),
    Kw(&'static str),
    Op(&'static str),
    Newline,
}

const KEYWORDS: &[&str] = &[
    "if", "else", "for", "while", "in", "function", "TRUE", "FALSE", "NULL", "NA", "break", "next",
    "return", "repeat",
];

const OPS_MULTI: &[&str] = &["<-", "<=", ">=", "==", "!=", "%%", "%/%", "&&", "||"];
const OPS_ONE: &[&str] = &[
    "+", "-", "*", "/", "^", "(", ")", "{", "}", "[", "]", ",", ";", ":", "=", "<", ">", "!", "&",
    "|",
];

pub fn tokenize(src: &str) -> Result<Vec<Tok>, RError> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' => i += 1,
            b'\n' => {
                toks.push(Tok::Newline);
                i += 1;
            }
            b'#' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'0'..=b'9' | b'.' if c != b'.' || b.get(i + 1).is_some_and(u8::is_ascii_digit) => {
                let start = i;
                while i < b.len()
                    && (b[i].is_ascii_digit()
                        || b[i] == b'.'
                        || b[i] == b'e'
                        || b[i] == b'E'
                        || ((b[i] == b'+' || b[i] == b'-')
                            && i > start
                            && (b[i - 1] == b'e' || b[i - 1] == b'E')))
                {
                    i += 1;
                }
                let text = &src[start..i];
                toks.push(Tok::Num(text.parse().map_err(|_| {
                    RError::new(format!("unexpected numeric literal: {text}"))
                })?));
            }
            b'"' | b'\'' => {
                let quote = c;
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= b.len() {
                        return Err(RError::new("unterminated string constant"));
                    }
                    if b[i] == quote {
                        i += 1;
                        break;
                    }
                    if b[i] == b'\\' && i + 1 < b.len() {
                        if b[i + 1].is_ascii() {
                            s.push(match b[i + 1] {
                                b'n' => '\n',
                                b't' => '\t',
                                other => other as char,
                            });
                            i += 2;
                        } else {
                            let c = src[i + 1..].chars().next().unwrap();
                            s.push(c);
                            i += 1 + c.len_utf8();
                        }
                    } else {
                        let ch = src[i..].chars().next().unwrap();
                        s.push(ch);
                        i += ch.len_utf8();
                    }
                }
                toks.push(Tok::Str(s));
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                // R names may contain dots: `as.numeric`, `which.max`.
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                {
                    i += 1;
                }
                let word = &src[start..i];
                if let Some(kw) = KEYWORDS.iter().find(|k| **k == word) {
                    toks.push(Tok::Kw(kw));
                } else {
                    toks.push(Tok::Name(word.to_string()));
                }
            }
            _ => {
                let rest = &src[i..];
                if let Some(op) = OPS_MULTI.iter().find(|o| rest.starts_with(**o)) {
                    toks.push(Tok::Op(op));
                    i += op.len();
                } else if let Some(op) = OPS_ONE.iter().find(|o| rest.starts_with(**o)) {
                    toks.push(Tok::Op(op));
                    i += op.len();
                } else {
                    return Err(RError::new(format!(
                        "unexpected character '{}'",
                        rest.chars().next().unwrap()
                    )));
                }
            }
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrows_and_ops() {
        let t = tokenize("x <- 1 + 2").unwrap();
        assert_eq!(
            t,
            vec![
                Tok::Name("x".into()),
                Tok::Op("<-"),
                Tok::Num(1.0),
                Tok::Op("+"),
                Tok::Num(2.0)
            ]
        );
    }

    #[test]
    fn dotted_names() {
        let t = tokenize("as.numeric(s)").unwrap();
        assert_eq!(t[0], Tok::Name("as.numeric".into()));
    }

    #[test]
    fn integer_division_ops() {
        let t = tokenize("7 %/% 2 %% 3").unwrap();
        assert!(t.contains(&Tok::Op("%/%")));
        assert!(t.contains(&Tok::Op("%%")));
    }

    #[test]
    fn comments_and_newlines() {
        let t = tokenize("x <- 1 # comment\ny <- 2").unwrap();
        assert!(t.contains(&Tok::Newline));
        assert!(!format!("{t:?}").contains("comment"));
    }

    #[test]
    fn leading_dot_number() {
        let t = tokenize("x <- .5").unwrap();
        assert!(t.contains(&Tok::Num(0.5)));
    }

    #[test]
    fn strings_both_quotes() {
        let t = tokenize(r#"c("a", 'b')"#).unwrap();
        assert!(t.contains(&Tok::Str("a".into())));
        assert!(t.contains(&Tok::Str("b".into())));
    }
}
