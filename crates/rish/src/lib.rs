//! # rish — an embeddable mini-R interpreter
//!
//! The companion of `pythonish` for the paper's other scripting language:
//! Swift/T embeds GNU R as a library (via a Tcl extension) so statistical
//! post-processing can run in-process on compute nodes (Wozniak et al.,
//! CLUSTER 2015, §III.C). This reproduction substitutes a from-scratch
//! interpreter for an R subset with the defining R semantics: **everything
//! is a vector**, arithmetic is vectorized with recycling, indexing is
//! 1-based, and functions are first-class.
//!
//! Supported subset: numeric/character/logical vectors, `c()`, `a:b`,
//! `seq`/`rep`, vectorized `+ - * / ^ %% %/%` and comparisons, `&`/`|`/`!`,
//! `<-`/`=` assignment, `if`/`else`, `for`, `while`, `{}` blocks,
//! `function(...)` closures, `sapply`, and a statistics-flavored builtin
//! library (`sum`, `mean`, `sd`, `var`, `quantile`, ...).
//!
//! ```
//! use rish::R;
//!
//! let mut r = R::new();
//! let out = r.run("x <- c(1, 2, 3, 4)", "mean(x * 2)").unwrap();
//! assert_eq!(out, "5");
//! ```

mod interp;
mod lexer;
mod parser;
mod value;

pub use interp::R;
pub use value::{RError, RValue};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vectorized_arithmetic() {
        let mut r = R::new();
        assert_eq!(r.run("", "c(1, 2, 3) * 10 + 1").unwrap(), "11 21 31");
    }

    #[test]
    fn recycling() {
        let mut r = R::new();
        assert_eq!(
            r.run("", "c(1, 2, 3, 4) + c(10, 20)").unwrap(),
            "11 22 13 24"
        );
    }

    #[test]
    fn statistics() {
        let mut r = R::new();
        r.exec("x <- c(2, 4, 4, 4, 5, 5, 7, 9)").unwrap();
        assert_eq!(r.eval("mean(x)").unwrap().to_display(), "5");
        // Sample sd of this classic dataset is ~2.138.
        let sd: f64 = r.eval("sd(x)").unwrap().as_scalar().unwrap();
        assert!((sd - 2.13809).abs() < 1e-4);
    }

    #[test]
    fn closures_and_sapply() {
        let mut r = R::new();
        let code = "sq <- function(v) v * v";
        assert_eq!(r.run(code, "sapply(1:4, sq)").unwrap(), "1 4 9 16");
    }

    #[test]
    fn state_retained() {
        let mut r = R::new();
        r.exec("acc <- 0").unwrap();
        r.exec("acc <- acc + 10").unwrap();
        assert_eq!(r.eval("acc").unwrap().to_display(), "10");
    }
}
