//! Mini-R must return `RError`, never panic, on arbitrary code.

use proptest::prelude::*;
use rish::R;

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn exec_never_panics_on_arbitrary_input(src in ".{0,160}") {
        let mut r = R::new();
        let _ = r.exec(&src);
    }

    #[test]
    fn exec_never_panics_on_r_soup(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("c"), Just("("), Just(")"), Just("<-"), Just("x"),
                Just("function"), Just("{"), Just("}"), Just("for"),
                Just("in"), Just("1"), Just(":"), Just("9"), Just("+"),
                Just("["), Just("]"), Just("sum"), Just("if"), Just("else"),
                Just("\n"), Just(","), Just("'s'"), Just("%%"), Just("$"),
            ],
            0..30,
        )
    ) {
        let src: String = tokens.join(" ");
        let mut r = R::new();
        let _ = r.exec(&src);
    }
}
