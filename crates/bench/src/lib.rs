//! Shared helpers for the benchmark harness.
//!
//! Each file in `benches/` regenerates one experiment from DESIGN.md §4,
//! printing the table/series the paper-style evaluation reports. Absolute
//! numbers reflect the simulated substrate, not the authors' Blue Gene/Q —
//! the *shapes* (who wins, crossover locations, scaling slopes) are the
//! reproduction targets; see EXPERIMENTS.md.

use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A JSON scalar for [`BenchReport`] rows.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A string value.
    Str(String),
    /// An unsigned integer value.
    U64(u64),
    /// A floating-point value (rendered with enough precision to round-trip).
    F64(f64),
    /// A boolean value.
    Bool(bool),
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Json::Str(s) => {
                write!(f, "\"")?;
                for c in s.chars() {
                    match c {
                        '"' => write!(f, "\\\"")?,
                        '\\' => write!(f, "\\\\")?,
                        '\n' => write!(f, "\\n")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                write!(f, "\"")
            }
            Json::U64(v) => write!(f, "{v}"),
            Json::F64(v) => {
                if v.is_finite() {
                    write!(f, "{v}")
                } else {
                    write!(f, "null")
                }
            }
            Json::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// Machine-readable benchmark output: a flat list of measurement rows,
/// written as `BENCH_<name>.json` so perf PRs leave a tracked trajectory
/// (see EXPERIMENTS.md). The schema is deliberately flat — one JSON object
/// per measurement with self-describing keys — so downstream tooling can
/// diff runs without knowing each experiment's table shape.
pub struct BenchReport {
    name: String,
    rows: Vec<Vec<(String, Json)>>,
}

impl BenchReport {
    /// Start a report for experiment `name` (e.g. `"f2"`).
    pub fn new(name: &str) -> Self {
        BenchReport {
            name: name.to_string(),
            rows: Vec::new(),
        }
    }

    /// Append one measurement row.
    pub fn row(&mut self, fields: &[(&str, Json)]) {
        self.rows.push(
            fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        );
    }

    /// Render the report as a JSON document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"experiment\": {},\n",
            Json::Str(self.name.clone())
        ));
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("    {");
            for (j, (k, v)) in row.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{}: {}", Json::Str(k.clone()), v));
            }
            out.push('}');
            if i + 1 < self.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write `BENCH_<name>.json`. The directory is `$SWIFTT_BENCH_DIR` when
    /// set, else the workspace root (two levels above this crate), so the
    /// file lands next to the repo's other `BENCH_*.json` trajectory files.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = std::env::var_os("SWIFTT_BENCH_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| {
                PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                    .join("..")
                    .join("..")
            });
        let path = dir.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.render())?;
        Ok(path)
    }
}

/// Whether the benches run in CI smoke mode (`SWIFTT_BENCH_SMOKE=1`):
/// fewer repetitions and smaller task counts, same tables and JSON schema.
pub fn smoke() -> bool {
    std::env::var("SWIFTT_BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Print an experiment header in a uniform style.
pub fn banner(id: &str, title: &str, claim: &str) {
    println!();
    println!("================================================================");
    println!("{id}: {title}");
    println!("paper claim: {claim}");
    println!("================================================================");
}

/// Print one table row: a label column then value columns.
pub fn row(label: &str, cols: &[String]) {
    print!("{label:<26}");
    for c in cols {
        print!(" {c:>14}");
    }
    println!();
}

/// Print a table header row.
pub fn header(label: &str, cols: &[&str]) {
    row(
        label,
        &cols.iter().map(|c| c.to_string()).collect::<Vec<_>>(),
    );
    println!("{}", "-".repeat(26 + cols.len() * 15));
}

/// Median wall time of `reps` runs of `f` (first run discarded as warmup
/// when `reps > 1`).
pub fn time_median<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    assert!(reps >= 1);
    let mut times = Vec::with_capacity(reps);
    if reps > 1 {
        f(); // warmup
    }
    for _ in 0..reps {
        let t = Instant::now();
        f();
        times.push(t.elapsed());
    }
    times.sort();
    times[times.len() / 2]
}

/// Format a duration in milliseconds with 2 decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Format simulated nanoseconds as milliseconds.
pub fn sim_ms(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e6)
}

/// Format a rate.
pub fn rate(count: u64, d: Duration) -> String {
    format!("{:.0}", count as f64 / d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_median_is_positive() {
        let d = time_median(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn formatting() {
        assert_eq!(ms(Duration::from_millis(1500)), "1500.00");
        assert_eq!(sim_ms(2_000_000), "2.00");
    }

    #[test]
    fn bench_report_renders_valid_rows() {
        let mut r = BenchReport::new("t1");
        r.row(&[
            ("series", Json::Str("a\"b".into())),
            ("n", Json::U64(3)),
            ("rate", Json::F64(1.5)),
            ("batching", Json::Bool(true)),
        ]);
        r.row(&[("n", Json::U64(4))]);
        let doc = r.render();
        assert!(doc.contains("\"experiment\": \"t1\""));
        assert!(
            doc.contains("{\"series\": \"a\\\"b\", \"n\": 3, \"rate\": 1.5, \"batching\": true},")
        );
        assert!(doc.contains("{\"n\": 4}\n"));
    }
}
