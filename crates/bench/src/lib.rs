//! Shared helpers for the benchmark harness.
//!
//! Each file in `benches/` regenerates one experiment from DESIGN.md §4,
//! printing the table/series the paper-style evaluation reports. Absolute
//! numbers reflect the simulated substrate, not the authors' Blue Gene/Q —
//! the *shapes* (who wins, crossover locations, scaling slopes) are the
//! reproduction targets; see EXPERIMENTS.md.

use std::time::{Duration, Instant};

/// Print an experiment header in a uniform style.
pub fn banner(id: &str, title: &str, claim: &str) {
    println!();
    println!("================================================================");
    println!("{id}: {title}");
    println!("paper claim: {claim}");
    println!("================================================================");
}

/// Print one table row: a label column then value columns.
pub fn row(label: &str, cols: &[String]) {
    print!("{label:<26}");
    for c in cols {
        print!(" {c:>14}");
    }
    println!();
}

/// Print a table header row.
pub fn header(label: &str, cols: &[&str]) {
    row(
        label,
        &cols.iter().map(|c| c.to_string()).collect::<Vec<_>>(),
    );
    println!("{}", "-".repeat(26 + cols.len() * 15));
}

/// Median wall time of `reps` runs of `f` (first run discarded as warmup
/// when `reps > 1`).
pub fn time_median<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    assert!(reps >= 1);
    let mut times = Vec::with_capacity(reps);
    if reps > 1 {
        f(); // warmup
    }
    for _ in 0..reps {
        let t = Instant::now();
        f();
        times.push(t.elapsed());
    }
    times.sort();
    times[times.len() / 2]
}

/// Format a duration in milliseconds with 2 decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Format simulated nanoseconds as milliseconds.
pub fn sim_ms(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e6)
}

/// Format a rate.
pub fn rate(count: u64, d: Duration) -> String {
    format!("{:.0}", count as f64 / d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_median_is_positive() {
        let d = time_median(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn formatting() {
        assert_eq!(ms(Duration::from_millis(1500)), "1500.00");
        assert_eq!(sim_ms(2_000_000), "2.00");
    }
}
