//! E1 — §III.A: Tcl fragments with `<<var>>` templates.
//!
//! Measures the machinery behind the paper's "ease of exposing simple Tcl
//! snippets to Swift": STC compile time for leaf declarations, the cost of
//! evaluating a generated fragment, and the end-to-end latency of a
//! fragment call through the full distributed runtime.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use swiftt_core::Runtime;

const LEAF_PROGRAM: &str = r#"
    (int o) f (int i, int j) "my_package" "1.0" [
        "set <<o>> [ expr {<<i>> * <<j>> + 1} ]"
    ];
    int v = f(6, 7);
    trace(v);
"#;

fn bench_fragment(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_tcl_fragment");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));

    // Compile time for the §III.A example.
    group.bench_function("stc_compile_leaf_decl", |b| {
        b.iter(|| black_box(stc::compile(black_box(LEAF_PROGRAM)).unwrap()))
    });

    // Raw fragment evaluation in an embedded interpreter (what a worker
    // does per task, minus data-store traffic).
    let mut interp = tclish::Interp::new();
    interp
        .eval("proc frag {i j} { return [ expr {$i * $j + 1} ] }")
        .unwrap();
    group.bench_function("fragment_eval_in_interp", |b| {
        b.iter(|| black_box(interp.eval("frag 6 7").unwrap()))
    });

    // Parse cache effectiveness: an unseen script each call.
    let mut n = 0u64;
    group.bench_function("fragment_eval_uncached", |b| {
        b.iter(|| {
            n += 1;
            black_box(interp.eval(&format!("frag 6 {}", n % 1000)).unwrap())
        })
    });

    group.finish();

    // End-to-end: a whole machine boot + leaf call + shutdown.
    // (Too coarse for criterion; report once.) The leaf's declared
    // package must exist, as on a real deployment.
    let rt = Runtime::new(3).tcl_package("my_package", "1.0", "# empty package");
    let mut total = std::time::Duration::ZERO;
    let reps = 10;
    for _ in 0..reps {
        let t = std::time::Instant::now();
        rt.run(LEAF_PROGRAM).unwrap();
        total += t.elapsed();
    }
    println!(
        "\nE1 end-to-end: full machine boot + fragment leaf + shutdown: {:.2} ms/run (n={reps})",
        total.as_secs_f64() * 1e3 / reps as f64
    );
}

criterion_group!(benches, bench_fragment);
criterion_main!(benches);
