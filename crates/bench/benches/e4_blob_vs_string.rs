//! E4 — §III.B: blobs vs string marshaling for bulk binary data.
//!
//! Blobs exist because "scientific users of native code languages often
//! desire to operate on bulk data in arrays" and string conversion of
//! such data is ruinous. We sweep the payload size and compare moving an
//! f64 array through (a) the blob path (bytes stay binary end to end) and
//! (b) the string path (decimal text round-trip, what a naive
//! string-oriented binding would do).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use blobutils::Blob;

fn blob_roundtrip(data: &[f64]) -> f64 {
    // Producer side: wrap as a blob (one copy, as when storing a TD).
    let blob = Blob::from_f64s(data);
    let wire = blob.into_shared();
    // Consumer side: typed view and a reduction.
    let back = Blob::from_bytes(wire.to_vec());
    back.to_f64s().unwrap().iter().sum()
}

fn string_roundtrip(data: &[f64]) -> f64 {
    // Producer side: decimal text (what automatic string conversion does).
    let text = data
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(" ");
    // Consumer side: parse back.
    text.split_whitespace()
        .map(|w| w.parse::<f64>().unwrap())
        .sum()
}

fn bench_marshaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_blob_vs_string");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(200));

    for &n in &[128usize, 1024, 16 * 1024, 256 * 1024] {
        let data: Vec<f64> = (0..n).map(|i| i as f64 * 0.25 + 0.125).collect();
        group.throughput(Throughput::Bytes((n * 8) as u64));
        group.bench_with_input(BenchmarkId::new("blob", n * 8), &data, |b, d| {
            b.iter(|| black_box(blob_roundtrip(d)))
        });
        group.bench_with_input(BenchmarkId::new("string", n * 8), &data, |b, d| {
            b.iter(|| black_box(string_roundtrip(d)))
        });
    }
    group.finish();

    // Sanity print: the two paths agree.
    let data: Vec<f64> = (0..1000).map(|i| i as f64).collect();
    assert_eq!(blob_roundtrip(&data), string_roundtrip(&data));
    println!("\nE4 note: blob and string paths compute identical sums; the blob path");
    println!("is the one that keeps its advantage as payloads grow (see throughput).");
}

criterion_group!(benches, bench_marshaling);
criterion_main!(benches);
