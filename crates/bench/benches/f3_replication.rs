//! F3 (fault-tolerance series) — what server-tier replication costs, and
//! what a failover costs.
//!
//! Series A sweeps the raw ADLB put/get pipeline (as in F2 series E) over
//! `replication = 1` vs `2` on a 2-server layout: replication is
//! write-through on the request path, so its price is one extra send per
//! mutating request per replica holder. Series B kills one server mid-run
//! at `replication = 2` and compares the makespan against the same
//! workload fault-free: the difference is the price of a failover
//! (suspect → confirm → promote → replay) as seen by the application.
//!
//! Writes `BENCH_f3.json`; `BENCH_f3_baseline.json` is the committed
//! reference trajectory.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use adlb::{serve_ext, AdlbClient, ClientConfig, Layout, ServerConfig, WORK_TYPE_WORK};
use mpisim::{FaultPlan, World};
use swiftt_bench::{banner, header, ms, rate, row, smoke, time_median, BenchReport, Json};

/// One submitter floods `tasks` tasks of `payload` bytes; `workers`
/// workers drain them through 2 servers at the given replication factor.
/// Returns (wall, total replication ops shipped).
fn pipeline(workers: usize, payload: usize, tasks: usize, replication: usize) -> (Duration, u64) {
    let servers = 2usize;
    let size = workers + 1 + servers;
    let layout = Layout::new(size, servers);
    let body = vec![0x61u8; payload];
    let config = ServerConfig {
        replication,
        ..ServerConfig::default()
    };
    let repl_ops = AtomicU64::new(0);
    let reps = if smoke() { 1 } else { 3 };
    let d = time_median(reps, || {
        let body = body.clone();
        let config = config.clone();
        let executed: Vec<u64> = World::run(size, move |comm| {
            let rank = comm.rank();
            if layout.is_server(rank) {
                return serve_ext(comm, layout, config.clone()).stats.repl_ops;
            }
            let mut client = AdlbClient::with_config(
                comm,
                layout,
                ClientConfig {
                    prefetch: 8,
                    put_buffer: 16,
                    ..ClientConfig::default()
                },
            );
            if rank == 0 {
                for _ in 0..tasks {
                    client.put(WORK_TYPE_WORK, 0, None, body.clone());
                }
                client.finish();
                return 0;
            }
            let mut n = 0u64;
            while client.get(&[WORK_TYPE_WORK]).is_some() {
                n += 1;
            }
            n
        });
        // Server ranks returned repl_ops; worker ranks returned counts.
        let servers_ops: u64 = executed[workers + 1..].iter().sum();
        let done: u64 = executed[..workers + 1].iter().sum();
        assert_eq!(done, tasks as u64);
        repl_ops.store(servers_ops, Ordering::Relaxed);
    });
    (d, repl_ops.load(Ordering::Relaxed))
}

/// The F2-style workload with per-task think time (so the kill lands
/// mid-run), optionally killing the last server after `kill_sends` of its
/// sends. Returns (wall, failovers observed).
fn faulted_run(tasks: u64, kill_sends: Option<u64>) -> (Duration, u64) {
    let workers = 4usize;
    let servers = 2usize;
    let size = workers + 1 + servers;
    let layout = Layout::new(size, servers);
    let victim = size - 1; // the non-master server
    let plan = match kill_sends {
        Some(n) => FaultPlan::new().kill_after_sends(victim, n),
        None => FaultPlan::new(),
    };
    let failovers = AtomicU64::new(0);
    let config = ServerConfig {
        replication: 2,
        ..ServerConfig::default()
    };
    let reps = if smoke() { 1 } else { 3 };
    let d = time_median(reps, || {
        let config = config.clone();
        let outcome = World::run_faulty(size, &plan, move |comm| {
            let rank = comm.rank();
            if layout.is_server(rank) {
                return serve_ext(comm, layout, config.clone()).stats.failovers;
            }
            let mut client = AdlbClient::new(comm, layout);
            if rank == 0 {
                for tid in 0..tasks {
                    client.put(WORK_TYPE_WORK, 0, None, tid.to_le_bytes().to_vec());
                }
                client.finish();
                return 0;
            }
            let mut n = 0u64;
            while client.get(&[WORK_TYPE_WORK]).is_some() {
                n += 1;
                std::thread::sleep(Duration::from_micros(200));
            }
            n
        });
        let done: u64 = outcome
            .outputs
            .iter()
            .take(workers + 1)
            .map(|o| o.unwrap_or(0))
            .sum();
        assert_eq!(done, tasks, "every task executed despite the death");
        let promoted: u64 = outcome
            .outputs
            .iter()
            .skip(workers + 1)
            .map(|o| o.unwrap_or(0))
            .sum();
        failovers.store(promoted, Ordering::Relaxed);
    });
    (d, failovers.load(Ordering::Relaxed))
}

fn main() {
    banner(
        "F3-FT",
        "server-tier replication: write-through overhead and failover cost",
        "R=2 pays one extra send per mutating request per replica; a failover costs suspicion + promotion, not the run",
    );

    let mut report = BenchReport::new("f3");
    let tasks = if smoke() { 300 } else { 2000 };

    println!();
    println!("series A: put/get pipeline, 2 servers, replication 1 vs 2 (wall)");
    header(
        "workers x payload",
        &["R", "makespan ms", "tasks/s", "repl ops"],
    );
    let worker_sweep: &[usize] = if smoke() { &[4] } else { &[2, 4, 8] };
    let payload_sweep: &[usize] = if smoke() { &[64] } else { &[64, 1024] };
    for &payload in payload_sweep {
        for &workers in worker_sweep {
            for replication in [1usize, 2] {
                let (d, repl_ops) = pipeline(workers, payload, tasks, replication);
                row(
                    &format!("{workers} x {payload}B"),
                    &[
                        replication.to_string(),
                        ms(d),
                        rate(tasks as u64, d),
                        repl_ops.to_string(),
                    ],
                );
                report.row(&[
                    ("series", Json::Str("replication_overhead".into())),
                    ("workers", Json::U64(workers as u64)),
                    ("servers", Json::U64(2)),
                    ("payload_bytes", Json::U64(payload as u64)),
                    ("tasks", Json::U64(tasks as u64)),
                    ("replication", Json::U64(replication as u64)),
                    ("repl_ops", Json::U64(repl_ops)),
                    ("wall_secs", Json::F64(d.as_secs_f64())),
                    ("tasks_per_sec", Json::F64(tasks as f64 / d.as_secs_f64())),
                ]);
            }
        }
    }

    println!();
    println!("series B: failover cost — kill the 2nd server mid-run at R=2 (wall)");
    header("schedule", &["makespan ms", "failovers", "overhead ms"]);
    let ft_tasks = if smoke() { 60 } else { 160 };
    let (clean, _) = faulted_run(ft_tasks, None);
    row("fault-free", &[ms(clean), "0".into(), "-".into()]);
    report.row(&[
        ("series", Json::Str("failover_recovery".into())),
        ("tasks", Json::U64(ft_tasks)),
        ("replication", Json::U64(2)),
        ("kill_sends", Json::U64(0)),
        ("failovers", Json::U64(0)),
        ("wall_secs", Json::F64(clean.as_secs_f64())),
        ("recovery_overhead_secs", Json::F64(0.0)),
    ]);
    for kill_sends in [8u64, 40] {
        let (d, failovers) = faulted_run(ft_tasks, Some(kill_sends));
        let overhead = d.saturating_sub(clean);
        row(
            &format!("kill@{kill_sends} sends"),
            &[ms(d), failovers.to_string(), ms(overhead)],
        );
        report.row(&[
            ("series", Json::Str("failover_recovery".into())),
            ("tasks", Json::U64(ft_tasks)),
            ("replication", Json::U64(2)),
            ("kill_sends", Json::U64(kill_sends)),
            ("failovers", Json::U64(failovers)),
            ("wall_secs", Json::F64(d.as_secs_f64())),
            ("recovery_overhead_secs", Json::F64(overhead.as_secs_f64())),
        ]);
    }

    println!();
    println!("shape check: series A's R=2 rows trail R=1 by the write-through");
    println!("amplification (repl ops > 0 only at R=2); series B completes every");
    println!("task with exactly one promotion and bounded overhead.");
    let path = report.write().expect("write BENCH_f3.json");
    println!("wrote {}", path.display());
}
