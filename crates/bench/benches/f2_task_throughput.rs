//! F2 — Fig. 2: the engine/server/worker architecture scales task
//! throughput.
//!
//! Swift/T's evaluation style (CCGrid'13 [2], Turbine [4]) reports task
//! rates against rank counts. Two regimes are shown:
//!
//! * **distribution scaling** (series A): per-task simulated cost; the
//!   virtual makespan — max per-worker assigned cost — must shrink with
//!   worker count. (Wall-clock speedup is meaningless on a 1-core CI
//!   host, so the assignment itself is the measurement.)
//! * **control-plane ceiling** (series B): zero-cost tasks; throughput is
//!   capped by the engine+server message path no matter how many workers
//!   listen — the task-rate ceiling the Turbine papers optimize. This is
//!   real serial work, so wall-clock is valid on any host.
//!
//! Series C and D vary the control side itself (servers, engines).

use std::time::Duration;

use swiftt_bench::{banner, header, ms, rate, row, smoke, time_median, BenchReport, Json};
use swiftt_core::{Role, Runtime};

/// Bag of `n` tasks; each prints `cost <units>` from its worker.
fn costed_bag(n: usize, cost: u64) -> String {
    format!(
        r#"
        (int o) work (int i) [
            "puts {{cost {cost}}}
             set <<o>> <<i>>"
        ];
        foreach i in [1:{n}] {{
            int s = work(i);
        }}
    "#
    )
}

fn worker_costs(r: &swiftt_core::RunResult) -> Vec<u64> {
    r.outputs
        .iter()
        .filter(|o| o.role == Role::Worker)
        .map(|o| {
            o.stdout
                .lines()
                .filter_map(|l| l.strip_prefix("cost "))
                .filter_map(|v| v.parse::<u64>().ok())
                .sum()
        })
        .collect()
}

/// Series E: raw ADLB control-plane throughput. One submitter floods
/// `tasks` tasks of `payload` bytes; `workers` workers drain them through
/// a single server. This isolates the put/get protocol cost — no
/// interpreter, no dataflow — so it is the direct measure of the wire
/// pipeline (and the acceptance gauge for batching changes).
fn adlb_throughput(workers: usize, payload: usize, tasks: usize, batching: bool) -> Duration {
    use adlb::{serve, AdlbClient, ClientConfig, Layout, ServerConfig, WORK_TYPE_WORK};
    use mpisim::World;

    let size = workers + 2; // submitter + workers + server
    let layout = Layout::new(size, 1);
    let body = vec![0x61u8; payload];
    let reps = if smoke() { 1 } else { 3 };
    // Batched: prefetch + pipelined puts (the default wire protocol).
    // Unbatched: the PR 1 one-task-per-round-trip protocol (ablation E5).
    let config = if batching {
        ClientConfig {
            prefetch: 8,
            put_buffer: 16,
            ..ClientConfig::default()
        }
    } else {
        ClientConfig::unbatched()
    };
    time_median(reps, || {
        let body = body.clone();
        let executed: Vec<u64> = World::run(size, move |comm| {
            let rank = comm.rank();
            if layout.is_server(rank) {
                serve(comm, layout, ServerConfig::default());
                return 0u64;
            }
            let mut client = AdlbClient::with_config(comm, layout, config);
            if rank == 0 {
                for _ in 0..tasks {
                    client.put(WORK_TYPE_WORK, 0, None, body.clone());
                }
                client.finish();
                return 0;
            }
            let mut n = 0u64;
            while client.get(&[WORK_TYPE_WORK]).is_some() {
                n += 1;
            }
            n
        });
        assert_eq!(executed.iter().sum::<u64>(), tasks as u64);
    })
}

/// Run series E over worker and payload sweeps, printing the table and
/// appending machine-readable rows to `report`.
fn payload_series(report: &mut BenchReport) {
    let tasks = if smoke() { 300 } else { 2000 };

    println!();
    println!("series E: raw ADLB put/get pipeline (1 server, wall)");
    header("workers x payload", &["batching", "makespan ms", "tasks/s"]);
    let mut record = |workers: usize, payload: usize, batching: bool| {
        let d = adlb_throughput(workers, payload, tasks, batching);
        row(
            &format!("{workers} x {payload}B"),
            &[
                if batching { "on" } else { "off" }.to_string(),
                ms(d),
                rate(tasks as u64, d),
            ],
        );
        report.row(&[
            ("series", Json::Str("adlb_pipeline".into())),
            ("workers", Json::U64(workers as u64)),
            ("servers", Json::U64(1)),
            ("payload_bytes", Json::U64(payload as u64)),
            ("tasks", Json::U64(tasks as u64)),
            ("batching", Json::Bool(batching)),
            ("wall_secs", Json::F64(d.as_secs_f64())),
            ("tasks_per_sec", Json::F64(tasks as f64 / d.as_secs_f64())),
        ]);
    };
    for batching in [true, false] {
        for workers in [1usize, 2, 4, 8] {
            record(workers, 64, batching);
        }
        for payload in [1024usize, 16384] {
            record(8, payload, batching);
        }
    }
}

fn main() {
    banner(
        "F2",
        "task throughput vs machine shape (Fig. 2 architecture)",
        "work distribution scales with workers; trivial tasks expose the control-plane task-rate ceiling",
    );
    println!(
        "host parallelism: {} core(s)",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );

    let mut report = BenchReport::new("f2");

    let tasks = 192usize;
    let unit = 5u64;
    let program = costed_bag(tasks, unit);
    let total = tasks as u64 * unit;

    println!();
    println!("series A: work distribution, workers sweep (virtual units)");
    header("workers", &["virt makespan", "ideal", "imbalance", "busy"]);
    let worker_sweep: &[usize] = if smoke() {
        &[1, 4]
    } else {
        &[1, 2, 4, 8, 16, 32]
    };
    for &workers in worker_sweep {
        let rt = Runtime::new(workers + 2);
        let r = rt.run(&program).expect("run failed");
        let costs = worker_costs(&r);
        assert_eq!(costs.iter().sum::<u64>(), total);
        let makespan = *costs.iter().max().unwrap();
        let ideal = total.div_ceil(workers as u64);
        row(
            &workers.to_string(),
            &[
                makespan.to_string(),
                ideal.to_string(),
                format!("{:.2}x", makespan as f64 / ideal as f64),
                costs.iter().filter(|&&c| c > 0).count().to_string(),
            ],
        );
    }

    println!();
    println!("series B: zero-work tasks — control-plane task-rate ceiling (wall)");
    header("workers", &["makespan ms", "tasks/s"]);
    let noop_tasks = if smoke() { 120 } else { 600 };
    let noop = costed_bag(noop_tasks, 0);
    let b_sweep: &[usize] = if smoke() { &[4] } else { &[1, 4, 16] };
    for &workers in b_sweep {
        let rt = Runtime::new(workers + 2);
        let d = time_median(if smoke() { 1 } else { 3 }, || {
            rt.run(&noop).expect("run failed");
        });
        row(&workers.to_string(), &[ms(d), rate(noop_tasks as u64, d)]);
        report.row(&[
            ("series", Json::Str("turbine_ceiling".into())),
            ("workers", Json::U64(workers as u64)),
            ("servers", Json::U64(1)),
            ("tasks", Json::U64(noop_tasks as u64)),
            ("wall_secs", Json::F64(d.as_secs_f64())),
            (
                "tasks_per_sec",
                Json::F64(noop_tasks as f64 / d.as_secs_f64()),
            ),
        ]);
    }

    // Series F: lifecycle-tracing overhead on the control-plane ceiling.
    // The recorder must be cheap enough that a traced run keeps (nearly)
    // the untraced task rate; CI gates on this via SWIFTT_TRACE_GATE.
    println!();
    println!("series F: task-lifecycle tracing overhead (zero-work tasks, wall)");
    header(
        "tracing",
        &["makespan ms", "tasks/s", "lat p50 µs", "lat p99 µs"],
    );
    let f_workers = 4usize;
    let f_reps = if smoke() { 1 } else { 3 };
    let rt_off = Runtime::new(f_workers + 2);
    let rt_on = Runtime::new(f_workers + 2).tracing(true);
    let d_off = time_median(f_reps, || {
        rt_off.run(&noop).expect("run failed");
    });
    let mut traced_result = None;
    let d_on = time_median(f_reps, || {
        traced_result = Some(rt_on.run(&noop).expect("run failed"));
    });
    let traced = traced_result.expect("traced run ran");
    let lat = traced.latency.and_then(|l| l.task_latency);
    let (p50, p99) = lat.map_or((0, 0), |s| (s.p50_us, s.p99_us));
    row(
        "off",
        &[
            ms(d_off),
            rate(noop_tasks as u64, d_off),
            "-".into(),
            "-".into(),
        ],
    );
    row(
        "on",
        &[
            ms(d_on),
            rate(noop_tasks as u64, d_on),
            p50.to_string(),
            p99.to_string(),
        ],
    );
    for (tracing, d) in [(false, d_off), (true, d_on)] {
        let mut fields = vec![
            ("series", Json::Str("tracing_overhead".into())),
            ("workers", Json::U64(f_workers as u64)),
            ("tasks", Json::U64(noop_tasks as u64)),
            ("tracing", Json::Bool(tracing)),
            ("wall_secs", Json::F64(d.as_secs_f64())),
            (
                "tasks_per_sec",
                Json::F64(noop_tasks as f64 / d.as_secs_f64()),
            ),
        ];
        if tracing {
            if let Some(s) = lat {
                fields.push(("task_latency_p50_us", Json::U64(s.p50_us)));
                fields.push(("task_latency_p95_us", Json::U64(s.p95_us)));
                fields.push(("task_latency_p99_us", Json::U64(s.p99_us)));
            }
        }
        report.row(&fields);
    }
    // The trace doubles as a CI artifact: a Chrome-loadable timeline of
    // the ceiling workload, written next to the BENCH_*.json files.
    let trace_dir = std::env::var_os("SWIFTT_BENCH_DIR").map(std::path::PathBuf::from);
    if let Some(dir) = trace_dir {
        let path = dir.join("trace.json");
        traced.write_trace(&path).expect("write trace.json");
        println!("wrote {}", path.display());
    }
    assert_eq!(
        mpisim::trace::count_kind(&traced.traces, mpisim::trace::KIND_TASK_EVAL),
        traced.total_tasks(),
        "trace eval spans must reconcile with executed-task counter"
    );
    if std::env::var("SWIFTT_TRACE_GATE")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        let ratio = d_off.as_secs_f64() / d_on.as_secs_f64();
        assert!(
            ratio >= 0.9,
            "traced throughput fell below 90% of untraced ({:.1}%)",
            ratio * 100.0
        );
        println!(
            "trace gate: traced run at {:.1}% of untraced throughput",
            ratio * 100.0
        );
    }

    payload_series(&mut report);

    if smoke() {
        let path = report.write().expect("write BENCH_f2.json");
        println!();
        println!("smoke mode: wrote {}", path.display());
        return;
    }

    println!();
    println!("series C: servers at 16 workers (distribution + steal traffic;");
    println!("tasks carry real wall cost so queues persist long enough to steal)");
    header("servers", &["virt makespan", "imbalance", "steals"]);
    // Instant tasks would drain at the submitting server before steal
    // requests find surplus; give each task a real busy-wait.
    let busy_program = format!(
        r#"
        (int o) work (int i) [
            "puts {{cost {unit}}}
             set acc 0
             for {{set k 0}} {{$k < 4000}} {{incr k}} {{ incr acc 1 }}
             set <<o>> <<i>>"
        ];
        foreach i in [1:{tasks}] {{
            int s = work(i);
        }}
    "#
    );
    for servers in [1usize, 2, 4] {
        let rt = Runtime::new(16 + 1 + servers).servers(servers);
        let r = rt.run(&busy_program).expect("run failed");
        let costs = worker_costs(&r);
        let makespan = *costs.iter().max().unwrap();
        let ideal = total.div_ceil(16);
        row(
            &servers.to_string(),
            &[
                makespan.to_string(),
                format!("{:.2}x", makespan as f64 / ideal as f64),
                r.server_totals().tasks_stolen.to_string(),
            ],
        );
    }

    println!();
    println!("series D: engines at 16 workers, 2 servers (control fan-out)");
    header("engines", &["virt makespan", "rules on e0", "rules on e1+"]);
    for engines in [1usize, 2, 4] {
        let rt = Runtime::new(16 + engines + 2).servers(2).engines(engines);
        let r = rt.run(&program).expect("run failed");
        let costs = worker_costs(&r);
        let makespan = *costs.iter().max().unwrap();
        let rules: Vec<u64> = r
            .outputs
            .iter()
            .filter(|o| o.role == Role::Engine)
            .map(|o| o.rules_created)
            .collect();
        row(
            &engines.to_string(),
            &[
                makespan.to_string(),
                rules[0].to_string(),
                rules[1..].iter().sum::<u64>().to_string(),
            ],
        );
    }
    println!();
    println!("shape check: series A tracks ideal until saturation; series B is flat-");
    println!("to-declining (control-bound); series D moves rule creation off engine 0.");
    let path = report.write().expect("write BENCH_f2.json");
    println!("wrote {}", path.display());
}
