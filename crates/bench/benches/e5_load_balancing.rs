//! E5 — §II.A/§II.B: ADLB load balancing under skewed task costs.
//!
//! "If f() and g() are compute-intensive functions with varying runtimes,
//! the asynchronous, load-balanced Swift model is an excellent fit." We
//! run bags of tasks with skewed simulated costs and compare work
//! stealing on vs off — the balance of the resulting *assignment* is the
//! core-independent measurement (see F1/F2 for the convention).

use swiftt_bench::{banner, header, row};
use swiftt_core::{Role, Runtime};

/// `n` tasks; task i costs `(i % period) + 1` units and reports the cost
/// from whichever worker ran it.
fn skewed_bag(n: usize, period: usize) -> String {
    format!(
        r#"
        (int o) work (int i) [
            "set c [expr {{(<<i>> % {period}) + 1}}]
             puts \"cost $c\"
             set acc 0
             for {{set k 0}} {{$k < [expr {{$c * 800}}]}} {{incr k}} {{ incr acc 1 }}
             set <<o>> <<i>>"
        ];
        foreach i in [1:{n}] {{
            int s = work(i);
        }}
    "#
    )
}

fn stats(r: &swiftt_core::RunResult) -> (u64, u64, usize) {
    let costs: Vec<u64> = r
        .outputs
        .iter()
        .filter(|o| o.role == Role::Worker)
        .map(|o| {
            o.stdout
                .lines()
                .filter_map(|l| l.strip_prefix("cost "))
                .filter_map(|v| v.parse::<u64>().ok())
                .sum()
        })
        .collect();
    let total: u64 = costs.iter().sum();
    let max = *costs.iter().max().unwrap();
    let busy = costs.iter().filter(|&&c| c > 0).count();
    (total, max, busy)
}

fn main() {
    banner(
        "E5",
        "load balancing of varying-runtime tasks (steal ablation)",
        "work stealing spreads skewed work; without it, the hot server's workers carry the surplus",
    );

    let n = 96;
    let period = 8;
    let program = skewed_bag(n, period);

    println!("series A: stealing on/off, 12 workers across 3 servers");
    println!("(all puts flow through engine 0's server; without stealing only");
    println!("that server's workers can run untargeted work)");
    header(
        "stealing",
        &["virt makespan", "ideal", "imbalance", "busy", "stolen"],
    );
    for steal in [true, false] {
        let rt = Runtime::new(16).servers(3).work_stealing(steal);
        let r = rt.run(&program).expect("run failed");
        let (total, max, busy) = stats(&r);
        let ideal = total.div_ceil(12);
        row(
            if steal { "on" } else { "off" },
            &[
                max.to_string(),
                ideal.to_string(),
                format!("{:.2}x", max as f64 / ideal as f64),
                busy.to_string(),
                r.server_totals().tasks_stolen.to_string(),
            ],
        );
    }

    println!();
    println!("series B: skew sweep (stealing on, 12 workers / 3 servers)");
    header("skew period", &["virt makespan", "ideal", "imbalance"]);
    for period in [1usize, 4, 8, 16] {
        let program = skewed_bag(n, period);
        let rt = Runtime::new(16).servers(3);
        let r = rt.run(&program).expect("run failed");
        let (total, max, _) = stats(&r);
        let ideal = total.div_ceil(12);
        row(
            &period.to_string(),
            &[
                max.to_string(),
                ideal.to_string(),
                format!("{:.2}x", max as f64 / ideal as f64),
            ],
        );
    }

    println!();
    println!("shape check: stealing keeps imbalance near 1x across skews; with it");
    println!("off, the busy-worker count collapses toward one server's share.");
}
