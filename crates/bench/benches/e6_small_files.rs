//! E6 — §IV: the "many small file problem" and static packages.
//!
//! "We showed how the many small file problem common in scripted
//! solutions can be addressed with our static packages." A classic Tcl
//! deployment loads a package by scanning `pkgIndex.tcl` files and
//! sourcing many script files; at job start, *every rank* does this
//! simultaneously, hammering the metadata server. A static package is one
//! in-memory (or single-file) image.
//!
//! We model both against the simulated parallel filesystem and sweep the
//! rank count, then demonstrate the in-memory package path has zero
//! filesystem traffic at all.

use std::sync::Arc;

use pfs::{Pfs, PfsConfig};
use swiftt_bench::{banner, header, row, sim_ms};
use tclish::{Interp, PackageInit};

/// Files in the traditional package tree (pkgIndex + sources), each small.
const PACKAGE_FILES: usize = 60;
const SMALL_FILE_BYTES: usize = 2_000;

/// Simulated startup storm: every rank opens+reads the whole package tree.
fn tree_load_makespan(ranks: usize) -> (u64, u64) {
    let fs = Arc::new(Pfs::new(PfsConfig::default()));
    let mut admin = fs.client();
    for i in 0..PACKAGE_FILES {
        admin
            .put(
                &format!("/sw/tcl/pkg/file{i}.tcl"),
                &vec![0u8; SMALL_FILE_BYTES],
            )
            .unwrap();
    }
    let mut makespan = 0;
    for _ in 0..ranks {
        let mut c = fs.client();
        // Directory scan then per-file open+read, as `package require`
        // does against pkgIndex trees.
        c.readdir("/sw/tcl/pkg/").len();
        for i in 0..PACKAGE_FILES {
            c.read(&format!("/sw/tcl/pkg/file{i}.tcl")).unwrap();
        }
        makespan = makespan.max(c.now());
    }
    (makespan, fs.stats().metadata_ops)
}

/// Simulated static package: one bundled image per rank.
fn static_load_makespan(ranks: usize) -> (u64, u64) {
    let fs = Arc::new(Pfs::new(PfsConfig::default()));
    let mut admin = fs.client();
    admin
        .put(
            "/sw/tcl/pkg.bundle",
            &vec![0u8; PACKAGE_FILES * SMALL_FILE_BYTES],
        )
        .unwrap();
    let mut makespan = 0;
    for _ in 0..ranks {
        let mut c = fs.client();
        c.read("/sw/tcl/pkg.bundle").unwrap();
        makespan = makespan.max(c.now());
    }
    (makespan, fs.stats().metadata_ops)
}

fn main() {
    banner(
        "E6",
        "many-small-files package loading vs static packages (simulated PFS)",
        "per-file package trees serialize on the metadata server; static packages load in O(1) ops per rank",
    );
    println!(
        "model: tree = readdir + {PACKAGE_FILES} open+read of {SMALL_FILE_BYTES}-byte files per rank;"
    );
    println!("       static = 1 open+read of the bundled image per rank");
    println!();
    header(
        "ranks",
        &["tree ms (sim)", "static ms (sim)", "ratio", "md ops (tree)"],
    );
    for ranks in [16usize, 64, 256, 1024, 4096] {
        let (tree, tree_ops) = tree_load_makespan(ranks);
        let (stat, _) = static_load_makespan(ranks);
        row(
            &ranks.to_string(),
            &[
                sim_ms(tree),
                sim_ms(stat),
                format!("{:.1}x", tree as f64 / stat as f64),
                tree_ops.to_string(),
            ],
        );
    }

    // The in-memory variant used by this runtime: zero filesystem traffic.
    println!();
    println!("in-memory static package (what this runtime actually does):");
    let t = std::time::Instant::now();
    let mut loads = 0u64;
    for _ in 0..64 {
        let mut interp = Interp::new();
        interp.add_package(
            "bigpkg",
            "1.0",
            PackageInit::Script(std::rc::Rc::from(
                (0..PACKAGE_FILES)
                    .map(|i| format!("proc bigpkg::f{i} {{x}} {{ return [expr {{$x + {i}}}] }}\n"))
                    .collect::<String>()
                    .as_str(),
            )),
        );
        interp.eval("package require bigpkg").unwrap();
        assert_eq!(interp.eval("bigpkg::f7 35").unwrap(), "42");
        loads += 1;
    }
    println!(
        "  {loads} rank-equivalent loads of a {PACKAGE_FILES}-proc package: {:.2} ms total, 0 filesystem ops",
        t.elapsed().as_secs_f64() * 1e3
    );
}
