//! F1 — Fig. 1: implicit dataflow pipelines run concurrently.
//!
//! The paper's §II.A example implies N independent f→g pipelines that
//! Swift "will construct and execute in parallel on any available
//! resources". Wall-clock speedup is host-dependent (this CI host may
//! have a single core), so the reproduction measures the *scheduling*
//! properties, which are core-independent:
//!
//! * how many workers actually execute pipeline stages,
//! * how evenly stages spread (max/ideal imbalance),
//! * the virtual makespan — max per-worker assigned compute — which is
//!   what adding ranks shrinks on a real machine.
//!
//! Each leaf prints `cost <units>` from the worker that ran it, so the
//! per-worker assignment is read straight from the per-rank output.

use swiftt_bench::{banner, header, row};
use swiftt_core::{Role, Runtime};

/// Fig. 1 with per-stage simulated cost: f costs 3 units, g costs 1.
fn fig1_program(width: usize) -> String {
    format!(
        r#"
        (int o) f (int i) [
            "puts {{cost 3}}
             set <<o>> [ expr {{3 * <<i>> + 1}} ]"
        ];
        (int o) g (int t) [
            "puts {{cost 1}}
             set <<o>> [ expr {{<<t>> % 4}} ]"
        ];
        foreach i in [0:{last}] {{
            int t = f(i);
            if (g(t) == 0) {{ trace(t); }}
        }}
    "#,
        last = width - 1,
    )
}

/// Sum the `cost N` lines in one rank's stdout.
fn worker_cost(stdout: &str) -> u64 {
    stdout
        .lines()
        .filter_map(|l| l.strip_prefix("cost "))
        .filter_map(|n| n.parse::<u64>().ok())
        .sum()
}

fn main() {
    banner(
        "F1",
        "dataflow pipelines from Fig. 1 (foreach of f->g)",
        "pipelines are independent; work spreads across workers and virtual makespan shrinks as workers are added",
    );
    println!(
        "host parallelism: {} core(s) — wall time is not a parallelism signal here;",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    println!("virtual makespan = max per-worker assigned cost (units).");
    println!();

    let width = 32;
    let total_cost = (3 + 1) * width as u64; // every pipeline runs f and g
    let program = fig1_program(width);

    header(
        "workers",
        &[
            "virt makespan",
            "ideal",
            "imbalance",
            "busy",
            "virt speedup",
        ],
    );
    let mut base = None;
    for workers in [1usize, 2, 4, 8, 16] {
        let rt = Runtime::new(workers + 2);
        let r = rt.run(&program).expect("run failed");
        let costs: Vec<u64> = r
            .outputs
            .iter()
            .filter(|o| o.role == Role::Worker)
            .map(|o| worker_cost(&o.stdout))
            .collect();
        assert_eq!(costs.iter().sum::<u64>(), total_cost, "all stages ran");
        let makespan = *costs.iter().max().unwrap();
        let busy = costs.iter().filter(|&&c| c > 0).count();
        let ideal = total_cost.div_ceil(workers as u64);
        let b = *base.get_or_insert(makespan);
        row(
            &workers.to_string(),
            &[
                makespan.to_string(),
                ideal.to_string(),
                format!("{:.2}x", makespan as f64 / ideal as f64),
                busy.to_string(),
                format!("{:.2}x", b as f64 / makespan as f64),
            ],
        );
    }

    println!();
    println!("series: pipeline width sweep at 8 workers");
    header("width", &["virt makespan", "ideal", "tasks"]);
    for w in [4usize, 8, 16, 32, 64] {
        let program = fig1_program(w);
        let r = Runtime::new(10).run(&program).expect("run failed");
        let costs: Vec<u64> = r
            .outputs
            .iter()
            .filter(|o| o.role == Role::Worker)
            .map(|o| worker_cost(&o.stdout))
            .collect();
        let makespan = *costs.iter().max().unwrap();
        let ideal = (4 * w as u64).div_ceil(8);
        row(
            &w.to_string(),
            &[
                makespan.to_string(),
                ideal.to_string(),
                r.total_tasks().to_string(),
            ],
        );
    }
    println!();
    println!("shape check: virtual makespan tracks ideal = total/workers until the");
    println!("pipeline width saturates the worker pool, as Fig. 1's dataflow implies.");
}
