//! F5 (multi-tenancy series) — what sharing one world among N Swift
//! programs costs, and whether the deficit-round-robin scheduler
//! actually delivers the configured weighted shares.
//!
//! Series A holds the total task count and worker pool fixed and sweeps
//! the tenant count: 1 tenant is the dedicated-world floor, N tenants
//! split the same work across N submitters with equal weights. The
//! acceptance bar from the tenant-subsystem issue: 4-tenant aggregate
//! throughput stays within 20% of the single-tenant floor (admission
//! and fair-share election are per-request bookkeeping on the server's
//! hot path, so the gap measures exactly that overhead).
//!
//! Series B floods one server from four submitters with weights
//! 4:2:1:1 and reports each tenant's share of contended deliveries
//! (deliveries made while another tenant also had eligible work — the
//! only regime where "share" is defined) against the weight vector.
//!
//! Writes `BENCH_f5.json`; `BENCH_f5_baseline.json` is the committed
//! reference trajectory.

use std::sync::Mutex;
use std::time::Duration;

use adlb::{
    merge_tenant_rows, serve_ext, AdlbClient, ClientConfig, Layout, ServerConfig, TenantSpec,
    TenantStats, WORK_TYPE_WORK,
};
use mpisim::World;
use swiftt_bench::{banner, header, ms, rate, row, smoke, time_median, BenchReport, Json};

/// One submitter per tenant floods `tasks_per_tenant` tasks; `workers`
/// workers drain everyone through one server scheduling by `weights`.
/// Returns (wall, merged per-tenant counters).
fn shared_world(
    weights: &[u32],
    tasks_per_tenant: &[usize],
    workers: usize,
) -> (Duration, Vec<(u32, TenantStats)>) {
    let tenants = weights.len();
    assert_eq!(tenants, tasks_per_tenant.len());
    let servers = 1usize;
    let size = tenants + workers + servers;
    let layout = Layout::new(size, servers);
    let specs: Vec<TenantSpec> = weights
        .iter()
        .enumerate()
        .map(|(i, w)| TenantSpec::new(i as u32, &format!("t{i}")).weight(*w))
        .collect();
    let config = ServerConfig {
        tenants: specs,
        ..ServerConfig::default()
    };
    let total: usize = tasks_per_tenant.iter().sum();
    let rows = Mutex::new(Vec::new());
    let reps = if smoke() { 1 } else { 3 };
    let counts = tasks_per_tenant.to_vec();
    let d = time_median(reps, || {
        let config = config.clone();
        let counts = counts.clone();
        let executed: Vec<(u64, Vec<(u32, TenantStats)>)> = World::run(size, move |comm| {
            let rank = comm.rank();
            if layout.is_server(rank) {
                let outcome = serve_ext(comm, layout, config.clone());
                return (0, outcome.tenant_rows);
            }
            let mut client = AdlbClient::with_config(
                comm,
                layout,
                ClientConfig {
                    prefetch: 8,
                    put_buffer: 16,
                    ..ClientConfig::default()
                },
            );
            if rank < counts.len() {
                // Submitter rank i is tenant i.
                client.set_tenant(rank as u32);
                for _ in 0..counts[rank] {
                    client.put(WORK_TYPE_WORK, 0, None, b"payload".to_vec());
                }
                client.finish();
                return (0, Vec::new());
            }
            let mut n = 0u64;
            while client.get(&[WORK_TYPE_WORK]).is_some() {
                n += 1;
            }
            (n, Vec::new())
        });
        let done: u64 = executed.iter().map(|(n, _)| n).sum();
        assert_eq!(done, total as u64, "every tenant's tasks must run");
        let mut merged = Vec::new();
        for (_, r) in &executed {
            merge_tenant_rows(&mut merged, r);
        }
        *rows.lock().unwrap() = merged;
    });
    let rows = rows.into_inner().unwrap();
    (d, rows)
}

fn main() {
    banner(
        "F5-TENANTS",
        "multi-tenant worlds: admission overhead and weighted fair shares",
        "N programs share one server fleet; DRR election tracks the weight vector",
    );

    let mut report = BenchReport::new("f5");
    let total_tasks = if smoke() { 400 } else { 4000 };
    let workers = 4usize;

    println!();
    println!("series A: fixed work ({total_tasks} tasks), equal weights, tenant-count sweep");
    header("tenants", &["makespan ms", "agg tasks/s", "vs 1 tenant"]);
    let sweep: &[usize] = if smoke() { &[1, 4] } else { &[1, 2, 4, 8] };
    let mut solo_rate = None;
    let mut four_rate = None;
    for &tenants in sweep {
        let weights = vec![1u32; tenants];
        let per = vec![total_tasks / tenants; tenants];
        let (d, _) = shared_world(&weights, &per, workers);
        let tput = total_tasks as f64 / d.as_secs_f64();
        if tenants == 1 {
            solo_rate = Some(tput);
        }
        if tenants == 4 {
            four_rate = Some(tput);
        }
        let vs = solo_rate
            .map(|s| format!("{:+.1}%", (tput / s - 1.0) * 100.0))
            .unwrap_or_default();
        row(
            &tenants.to_string(),
            &[ms(d), rate(total_tasks as u64, d), vs],
        );
        report.row(&[
            ("series", Json::Str("tenant_scaling".into())),
            ("tenants", Json::U64(tenants as u64)),
            ("workers", Json::U64(workers as u64)),
            ("tasks", Json::U64(total_tasks as u64)),
            ("wall_secs", Json::F64(d.as_secs_f64())),
            ("tasks_per_sec", Json::F64(tput)),
        ]);
    }

    println!();
    println!("series B: four flooding tenants, weights 4:2:1:1, contended shares");
    header(
        "tenant",
        &["weight", "delivered", "contended", "share", "expected"],
    );
    let weights = [4u32, 2, 1, 1];
    let total_weight: u32 = weights.iter().sum();
    // Task counts proportional to the weights keep every queue
    // backlogged for the whole run — the contended regime.
    let scale = if smoke() { 40 } else { 400 };
    let per: Vec<usize> = weights.iter().map(|w| *w as usize * scale).collect();
    let (d, rows) = shared_world(&weights, &per, workers);
    let contended: u64 = rows.iter().map(|(_, s)| s.delivered_contended).sum();
    for (id, stats) in &rows {
        let share = if contended > 0 {
            stats.delivered_contended as f64 / contended as f64
        } else {
            0.0
        };
        let expected = weights[*id as usize] as f64 / total_weight as f64;
        row(
            &format!("t{id}"),
            &[
                weights[*id as usize].to_string(),
                stats.delivered.to_string(),
                stats.delivered_contended.to_string(),
                format!("{share:.3}"),
                format!("{expected:.3}"),
            ],
        );
        report.row(&[
            ("series", Json::Str("weighted_share".into())),
            ("tenant", Json::U64(*id as u64)),
            ("weight", Json::U64(weights[*id as usize] as u64)),
            ("delivered", Json::U64(stats.delivered)),
            ("delivered_contended", Json::U64(stats.delivered_contended)),
            ("share", Json::F64(share)),
            ("expected_share", Json::F64(expected)),
            ("wall_secs", Json::F64(d.as_secs_f64())),
        ]);
    }

    println!();
    println!("shape check: series A should be flat — tenant accounting is O(1) per");
    println!("request, so splitting the same work across 4 submitters must retain");
    println!(">=80% of single-tenant throughput. Series B shares should track the");
    println!("weight vector within ~15% relative.");
    if let (Some(solo), Some(four)) = (solo_rate, four_rate) {
        let retained = four / solo * 100.0;
        println!("4-tenant retention vs 1-tenant: {retained:.1}%");
        report.row(&[
            ("series", Json::Str("retention".into())),
            ("four_tenant_retention_pct", Json::F64(retained)),
        ]);
    }
    let path = report.write().expect("write BENCH_f5.json");
    println!("wrote {}", path.display());
}
