//! F4 (durability series) — what the pfs-backed checkpoint/WAL tier
//! costs while nothing fails.
//!
//! Series A sweeps the group-commit interval over the raw ADLB put/get
//! pipeline (as in F3 series A): `off` is the floor, `1` logs every op
//! as its own WAL record (one metadata op + one data op per request —
//! the paper's §IV small-file storm), larger intervals amortize the
//! flush across a batch. While a record is unflushed every outbound
//! send is held, so the interval directly trades durability lag against
//! request latency.
//!
//! Series B pins the per-task vs batched comparison at one workload:
//! the record count is the number of pfs round-trips paid, the byte
//! count the log volume, and the wall-clock gap the group-commit win.
//!
//! Writes `BENCH_f4.json`; `BENCH_f4_baseline.json` is the committed
//! reference trajectory.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use adlb::{
    serve_ext, AdlbClient, CheckpointConfig, ClientConfig, Layout, ServerConfig, WORK_TYPE_WORK,
};
use mpisim::World;
use pfs::{Pfs, PfsConfig};
use swiftt_bench::{banner, header, ms, rate, row, smoke, time_median, BenchReport, Json};

/// Aggregated checkpoint-tier counters from one run's server ranks.
#[derive(Clone, Copy, Default)]
struct CkptCost {
    records: u64,
    ops: u64,
    segments: u64,
    bytes: u64,
}

/// One submitter floods `tasks` tasks; `workers` workers drain them
/// through 2 servers, checkpointing every `interval` ops (`None` = tier
/// off). Returns (wall, checkpoint counters).
fn pipeline(workers: usize, tasks: usize, interval: Option<usize>) -> (Duration, CkptCost) {
    let servers = 2usize;
    let size = workers + 1 + servers;
    let layout = Layout::new(size, servers);
    let records = AtomicU64::new(0);
    let ops = AtomicU64::new(0);
    let segments = AtomicU64::new(0);
    let bytes = AtomicU64::new(0);
    let reps = if smoke() { 1 } else { 3 };
    let d = time_median(reps, || {
        // Fresh filesystem per rep: an accumulated WAL would make later
        // reps pay for earlier reps' compactions.
        let checkpoint = interval
            .map(|n| CheckpointConfig::new(Arc::new(Pfs::new(PfsConfig::default()))).interval(n));
        let config = ServerConfig {
            checkpoint,
            ..ServerConfig::default()
        };
        let executed: Vec<[u64; 4]> = World::run(size, move |comm| {
            let rank = comm.rank();
            if layout.is_server(rank) {
                let s = serve_ext(comm, layout, config.clone()).stats;
                return [s.ckpt_records, s.ckpt_ops, s.ckpt_segments, s.ckpt_bytes];
            }
            let mut client = AdlbClient::with_config(
                comm,
                layout,
                ClientConfig {
                    prefetch: 8,
                    put_buffer: 16,
                    ..ClientConfig::default()
                },
            );
            if rank == 0 {
                for _ in 0..tasks {
                    client.put(WORK_TYPE_WORK, 0, None, b"payload".to_vec());
                }
                client.finish();
                return [0, 0, 0, 0];
            }
            let mut n = 0u64;
            while client.get(&[WORK_TYPE_WORK]).is_some() {
                n += 1;
            }
            [n, 0, 0, 0]
        });
        let done: u64 = executed[..workers + 1].iter().map(|r| r[0]).sum();
        assert_eq!(done, tasks as u64);
        let mut total = [0u64; 4];
        for r in &executed[workers + 1..] {
            for (t, v) in total.iter_mut().zip(r) {
                *t += v;
            }
        }
        records.store(total[0], Ordering::Relaxed);
        ops.store(total[1], Ordering::Relaxed);
        segments.store(total[2], Ordering::Relaxed);
        bytes.store(total[3], Ordering::Relaxed);
    });
    let cost = CkptCost {
        records: records.load(Ordering::Relaxed),
        ops: ops.load(Ordering::Relaxed),
        segments: segments.load(Ordering::Relaxed),
        bytes: bytes.load(Ordering::Relaxed),
    };
    (d, cost)
}

fn interval_label(interval: Option<usize>) -> String {
    match interval {
        None => "off".into(),
        Some(n) => n.to_string(),
    }
}

fn main() {
    banner(
        "F4-CKPT",
        "durable checkpoint/WAL tier: group-commit interval vs throughput",
        "per-op logging storms the pfs metadata server; batching amortizes it to noise",
    );

    let mut report = BenchReport::new("f4");
    let tasks = if smoke() { 200 } else { 1500 };
    let workers = 4usize;

    println!();
    println!("series A: put/get pipeline, 2 servers, checkpoint interval sweep (wall)");
    header(
        "interval",
        &["makespan ms", "tasks/s", "wal records", "segments", "bytes"],
    );
    let sweep: &[Option<usize>] = if smoke() {
        &[None, Some(1), Some(64)]
    } else {
        &[None, Some(1), Some(8), Some(64), Some(256)]
    };
    let mut off_wall = None;
    let mut default_wall = None;
    for &interval in sweep {
        let (d, cost) = pipeline(workers, tasks, interval);
        match interval {
            None => off_wall = Some(d),
            Some(adlb::CHECKPOINT_DEFAULT_INTERVAL) => default_wall = Some(d),
            _ => {}
        }
        row(
            &interval_label(interval),
            &[
                ms(d),
                rate(tasks as u64, d),
                cost.records.to_string(),
                cost.segments.to_string(),
                cost.bytes.to_string(),
            ],
        );
        report.row(&[
            ("series", Json::Str("interval_sweep".into())),
            ("workers", Json::U64(workers as u64)),
            ("servers", Json::U64(2)),
            ("tasks", Json::U64(tasks as u64)),
            ("interval", Json::U64(interval.unwrap_or(0) as u64)),
            ("ckpt_records", Json::U64(cost.records)),
            ("ckpt_ops", Json::U64(cost.ops)),
            ("ckpt_segments", Json::U64(cost.segments)),
            ("ckpt_bytes", Json::U64(cost.bytes)),
            ("wall_secs", Json::F64(d.as_secs_f64())),
            ("tasks_per_sec", Json::F64(tasks as f64 / d.as_secs_f64())),
        ]);
    }

    println!();
    println!("series B: per-task logging (interval 1) vs group commit (default)");
    header("granularity", &["makespan ms", "wal records", "bytes"]);
    for (label, interval) in [
        ("per-task", 1usize),
        ("batched", adlb::CHECKPOINT_DEFAULT_INTERVAL),
    ] {
        let (d, cost) = pipeline(workers, tasks, Some(interval));
        row(
            label,
            &[ms(d), cost.records.to_string(), cost.bytes.to_string()],
        );
        report.row(&[
            ("series", Json::Str("logging_granularity".into())),
            ("granularity", Json::Str(label.into())),
            ("workers", Json::U64(workers as u64)),
            ("tasks", Json::U64(tasks as u64)),
            ("interval", Json::U64(interval as u64)),
            ("ckpt_records", Json::U64(cost.records)),
            ("ckpt_bytes", Json::U64(cost.bytes)),
            ("wall_secs", Json::F64(d.as_secs_f64())),
        ]);
    }

    println!();
    println!("shape check: series A degrades monotonically as the interval shrinks");
    println!("(records ~ mutations/interval); the default interval should sit within");
    println!("~15% of the tier-off floor, while interval 1 pays a pfs round-trip per");
    println!("mutation batch of one.");
    if let (Some(off), Some(def)) = (off_wall, default_wall) {
        let overhead = (def.as_secs_f64() / off.as_secs_f64() - 1.0) * 100.0;
        println!(
            "default-interval overhead vs off: {overhead:+.1}% ({} vs {})",
            ms(def),
            ms(off)
        );
    }
    let path = report.write().expect("write BENCH_f4.json");
    println!("wrote {}", path.display());
}
