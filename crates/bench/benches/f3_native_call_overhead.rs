//! F3 — Fig. 3: calling native code through generated Tcl bindings.
//!
//! The paper's claim is architectural: once SWIG has produced Tcl
//! bindings, native functions are callable from Swift/T at scripting-call
//! cost. We measure the per-call overhead ladder with criterion:
//!
//!   direct Rust call  <  Tcl-bound native call  <  embedded Python  <  embedded R
//!
//! The interesting numbers are the *ratios* between rungs, which mirror
//! the paper's motivation for pushing bulk work into native leaves.

use criterion::{criterion_group, criterion_main, Criterion};
use std::cell::RefCell;
use std::hint::black_box;
use std::rc::Rc;

fn hypot_native(x: f64, y: f64) -> f64 {
    x.hypot(y)
}

fn bench_ladder(c: &mut Criterion) {
    let mut group = c.benchmark_group("f3_native_call_overhead");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));

    // Rung 0: plain Rust.
    group.bench_function("direct_rust_call", |b| {
        b.iter(|| black_box(hypot_native(black_box(3.0), black_box(4.0))))
    });

    // Rung 1: the same function exposed as a Tcl command (what SWIG
    // generates), called from a Tcl fragment.
    let interp = Rc::new(RefCell::new(tclish::Interp::new()));
    interp.borrow_mut().register("native::hypot", |_, argv| {
        let x: f64 = argv[1].parse().map_err(|_| tclish::Exception::error("x"))?;
        let y: f64 = argv[2].parse().map_err(|_| tclish::Exception::error("y"))?;
        Ok(tclish::format_double(hypot_native(x, y)))
    });
    {
        let interp = interp.clone();
        group.bench_function("tcl_bound_native_call", |b| {
            b.iter(|| black_box(interp.borrow_mut().eval("native::hypot 3.0 4.0").unwrap()))
        });
    }

    // Rung 1b: the full Swift/T leaf-task body — retrieve-free variant:
    // template expansion result as it executes on a worker.
    {
        let interp = interp.clone();
        interp
            .borrow_mut()
            .eval("proc leaf_task {x y} { return [ native::hypot $x $y ] }")
            .unwrap();
        group.bench_function("tcl_leaf_task_body", |b| {
            b.iter(|| black_box(interp.borrow_mut().eval("leaf_task 3.0 4.0").unwrap()))
        });
    }

    // Rung 2: embedded Python evaluating the same computation.
    let py = Rc::new(RefCell::new(pythonish::Python::new()));
    py.borrow_mut().exec("import math").unwrap();
    group.bench_function("embedded_python_call", |b| {
        b.iter(|| black_box(py.borrow_mut().run("", "math.hypot(3.0, 4.0)").unwrap()))
    });

    // Rung 3: embedded R evaluating the same computation.
    let r = Rc::new(RefCell::new(rish::R::new()));
    group.bench_function("embedded_r_call", |b| {
        b.iter(|| black_box(r.borrow_mut().run("", "sqrt(3.0^2 + 4.0^2)").unwrap()))
    });

    // Rung 4: interpreter initialization (what the Reinitialize policy
    // pays per task, §III.C).
    group.bench_function("python_interpreter_init", |b| {
        b.iter(|| black_box(pythonish::Python::new().run("x = 1", "x").unwrap()))
    });

    group.finish();
}

criterion_group!(benches, bench_ladder);
criterion_main!(benches);
