//! E3 — §III.C: retain vs reinitialize the embedded interpreter.
//!
//! "One approach is to finalize the interpreter at the end of each task
//! and reinitialize it [...] This approach raises concerns about
//! performance." We measure both policies on the same task stream, at the
//! micro level (interpreter only) and end to end (whole machine).

use swiftt_bench::{banner, header, ms, row, time_median};
use swiftt_core::{InterpPolicy, Runtime};

/// `n` python leaf tasks, each self-contained (so both policies succeed).
fn python_chain(n: usize) -> String {
    let mut s = String::new();
    s.push_str("string r0 = python(\"x = 0\", \"x\");\n");
    for i in 1..=n {
        // Chain via the string to serialize task order on one worker.
        s.push_str(&format!(
            "string r{i} = python(strcat(\"x = \", r{}), \"x + 1\");\n",
            i - 1
        ));
    }
    s.push_str(&format!("trace(r{n});\n"));
    s
}

fn main() {
    banner(
        "E3",
        "interpreter state policy: retain vs reinitialize",
        "retain avoids per-task interpreter setup; reinitialize pays it on every task",
    );

    // Micro: interpreter-only costs.
    println!("micro: 1000 evaluations of a small python fragment");
    header("policy", &["total ms", "per task us"]);
    let n = 1000;
    let retain = time_median(3, || {
        let mut py = pythonish::Python::new();
        for i in 0..n {
            py.run(&format!("x = {i}"), "x * 2").unwrap();
        }
    });
    let reinit = time_median(3, || {
        for i in 0..n {
            let mut py = pythonish::Python::new();
            py.run(&format!("x = {i}"), "x * 2").unwrap();
        }
    });
    row(
        "retain",
        &[
            ms(retain),
            format!("{:.2}", retain.as_secs_f64() * 1e6 / n as f64),
        ],
    );
    row(
        "reinitialize",
        &[
            ms(reinit),
            format!("{:.2}", reinit.as_secs_f64() * 1e6 / n as f64),
        ],
    );
    println!();
    println!("note: an *empty* mini-interpreter initializes in ~1 us, so the bare");
    println!("policies tie here — unlike CPython/libR, whose startup is tens of ms.");
    println!("The representative case is below: real tasks carry warmed state");
    println!("(imports, function defs, caches) that reinitialization must rebuild.");

    // A heavier interpreter state (function definitions, warm caches)
    // makes reinitialization relatively more expensive — the paper's
    // "possible resource leaks / performance" trade-off.
    println!();
    println!("micro: fragment needing a 60-function preamble (heavier init)");
    header("policy", &["total ms", "ratio"]);
    let mut preamble = String::new();
    for i in 0..60 {
        preamble.push_str(&format!("def f{i}(v):\n    return v + {i}\n"));
    }
    let m = 200;
    let retain_heavy = time_median(3, || {
        let mut py = pythonish::Python::new();
        py.exec(&preamble).unwrap();
        for _ in 0..m {
            py.run("", "f7(35)").unwrap();
        }
    });
    let reinit_heavy = time_median(3, || {
        for _ in 0..m {
            let mut py = pythonish::Python::new();
            py.exec(&preamble).unwrap();
            py.run("", "f7(35)").unwrap();
        }
    });
    row("retain", &[ms(retain_heavy), "1.00x".into()]);
    row(
        "reinitialize",
        &[
            ms(reinit_heavy),
            format!(
                "{:.2}x",
                reinit_heavy.as_secs_f64() / retain_heavy.as_secs_f64()
            ),
        ],
    );

    // End to end: the whole machine under both policies.
    println!();
    println!("end-to-end: 30 chained python leaf tasks on one worker");
    header("policy", &["makespan ms", "interp inits"]);
    let program = python_chain(30);
    for (name, policy) in [
        ("retain", InterpPolicy::Retain),
        ("reinitialize", InterpPolicy::Reinitialize),
    ] {
        let rt = Runtime::new(3).policy(policy);
        let mut inits = 0;
        let d = time_median(3, || {
            let r = rt.run(&program).expect("run failed");
            inits = r.total_interp_inits();
        });
        row(name, &[ms(d), inits.to_string()]);
    }
}
