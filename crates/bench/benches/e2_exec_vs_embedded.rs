//! E2 — §III.C: embedded interpreters vs exec-based scripting at scale.
//!
//! "Previous workflow programming systems call external languages by
//! executing the external interpreter executables. This strategy is
//! undesirable [...] because at large scale the filesystem overheads are
//! unacceptable." We quantify exactly that against the simulated parallel
//! filesystem (`pfs`), whose single metadata server is the contended
//! resource, sweeping the rank count.
//!
//! * **exec path** (Swift/K style): every task forks `python`, which the
//!   filesystem sees as a storm of metadata operations — the interpreter
//!   binary, shared libraries, and module files are stat'd/opened on
//!   *every* task on *every* rank.
//! * **embedded path** (Swift/T, this system): each rank loads one static
//!   package at job start (§IV), then evaluates fragments in-process; the
//!   filesystem sees one read per rank, total.
//!
//! Reported times are simulated filesystem milliseconds (deterministic);
//! per-task interpreter compute is identical on both sides and excluded.

use std::sync::Arc;

use pfs::{Pfs, PfsConfig};
use swiftt_bench::{banner, header, row, sim_ms};

/// Metadata ops a `python` exec performs before user code runs: binary +
/// dynamic libraries + imported modules. Conservative versus a real
/// CPython start (strace shows hundreds).
const EXEC_METADATA_OPS: usize = 40;
/// Bytes of interpreter + stdlib the exec path reads each time.
const EXEC_READ_BYTES: usize = 4 << 20;
/// Bytes of the static package the embedded path reads once per rank.
const PACKAGE_BYTES: usize = 1 << 20;
/// Leaf tasks per rank.
const TASKS_PER_RANK: usize = 4;

fn exec_makespan(ranks: usize) -> u64 {
    let fs = Arc::new(Pfs::new(PfsConfig::default()));
    // Stage the interpreter installation.
    let mut admin = fs.client();
    admin
        .put("/sw/python/bin/python", &vec![0u8; EXEC_READ_BYTES])
        .unwrap();
    for m in 0..EXEC_METADATA_OPS {
        admin
            .put(&format!("/sw/python/lib/mod{m}.py"), b"x")
            .unwrap();
    }
    let mut makespan = 0u64;
    for _ in 0..ranks {
        let mut c = fs.client();
        for _ in 0..TASKS_PER_RANK {
            // Fork + interpreter start: metadata storm then bulk read.
            for m in 0..EXEC_METADATA_OPS {
                c.open(&format!("/sw/python/lib/mod{m}.py")).unwrap();
            }
            c.read("/sw/python/bin/python").unwrap();
        }
        makespan = makespan.max(c.now());
    }
    makespan
}

fn embedded_makespan(ranks: usize) -> u64 {
    let fs = Arc::new(Pfs::new(PfsConfig::default()));
    let mut admin = fs.client();
    admin
        .put("/sw/swiftt/package.bin", &vec![0u8; PACKAGE_BYTES])
        .unwrap();
    let mut makespan = 0u64;
    for _ in 0..ranks {
        let mut c = fs.client();
        // One static-package load per rank at job start; tasks touch no
        // filesystem at all.
        c.read("/sw/swiftt/package.bin").unwrap();
        makespan = makespan.max(c.now());
    }
    makespan
}

fn main() {
    banner(
        "E2",
        "exec-based interpreters vs embedded interpreters (simulated PFS)",
        "exec per task is unacceptable at scale; embedding makes startup one read per rank",
    );
    println!(
        "model: exec = {EXEC_METADATA_OPS} metadata ops + {} MiB read per task ({TASKS_PER_RANK} tasks/rank);",
        EXEC_READ_BYTES >> 20
    );
    println!(
        "       embedded = 1 static package read ({} MiB) per rank, tasks touch no FS",
        PACKAGE_BYTES >> 20
    );
    println!();
    header(
        "ranks",
        &[
            "exec ms (sim)",
            "embed ms (sim)",
            "exec/embed",
            "md-wait ms",
        ],
    );
    for ranks in [16usize, 64, 256, 1024, 4096] {
        let fs_probe = Arc::new(Pfs::new(PfsConfig::default()));
        drop(fs_probe);
        let e = exec_makespan(ranks);
        let m = embedded_makespan(ranks);
        // Re-run exec to collect the metadata queue-wait statistic.
        let fs = Arc::new(Pfs::new(PfsConfig::default()));
        let mut admin = fs.client();
        admin
            .put("/sw/python/bin/python", &vec![0u8; EXEC_READ_BYTES])
            .unwrap();
        for mi in 0..EXEC_METADATA_OPS {
            admin
                .put(&format!("/sw/python/lib/mod{mi}.py"), b"x")
                .unwrap();
        }
        for _ in 0..ranks {
            let mut c = fs.client();
            for _ in 0..TASKS_PER_RANK {
                for mi in 0..EXEC_METADATA_OPS {
                    c.open(&format!("/sw/python/lib/mod{mi}.py")).unwrap();
                }
                c.read("/sw/python/bin/python").unwrap();
            }
        }
        let wait = fs.stats().md_queue_wait_ns;
        row(
            &ranks.to_string(),
            &[
                sim_ms(e),
                sim_ms(m),
                format!("{:.1}x", e as f64 / m as f64),
                sim_ms(wait),
            ],
        );
    }
    println!();
    println!("shape check: both paths serialize on the metadata server, so makespan");
    println!("grows linearly with ranks — but exec pays ~160x the metadata ops per");
    println!("rank, and its queue wait (md-wait) grows quadratically. At BG/Q scale");
    println!("(49k ranks) the exec path would hold the filesystem hostage for");
    println!("dozens of minutes per workflow stage, reproducing the paper's");
    println!("motivation for embedding interpreters.");
}
