//! The mini-Python evaluator: scopes, builtins, methods, `math` module.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::rc::Rc;

use crate::parser::{parse_expression, parse_module, Expr, FStrPart, Stmt, Target};
use crate::value::{PyError, Value};

#[derive(Debug, Clone)]
struct FuncDef {
    params: Vec<String>,
    body: Rc<Vec<Stmt>>,
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

/// An embedded Python interpreter instance.
///
/// One instance per worker rank; whether it survives across leaf tasks is
/// the *retain vs. reinitialize* policy of §III.C — retained interpreters
/// keep `globals` (fast, but state leaks between tasks), reinitialized ones
/// are rebuilt with [`Python::new`] (clean, but pay setup per task).
pub struct Python {
    globals: HashMap<String, Value>,
    functions: HashMap<String, Rc<FuncDef>>,
    output: String,
    depth: usize,
}

impl Default for Python {
    fn default() -> Self {
        Self::new()
    }
}

fn type_err<T>(msg: impl std::fmt::Display) -> Result<T, PyError> {
    Err(PyError::new("TypeError", msg))
}

fn name_err<T>(name: &str) -> Result<T, PyError> {
    Err(PyError::new(
        "NameError",
        format!("name '{name}' is not defined"),
    ))
}

impl Python {
    /// A fresh interpreter with empty global state.
    pub fn new() -> Self {
        Python {
            globals: HashMap::new(),
            functions: HashMap::new(),
            output: String::new(),
            depth: 0,
        }
    }

    /// Execute a code fragment (statements). State persists on this
    /// instance until it is dropped/reinitialized.
    pub fn exec(&mut self, code: &str) -> Result<(), PyError> {
        let stmts = parse_module(code)?;
        let mut frame = None;
        match self.exec_block(&stmts, &mut frame)? {
            Flow::Normal => Ok(()),
            Flow::Return(_) => Ok(()),
            Flow::Break => Err(PyError::new("SyntaxError", "'break' outside loop")),
            Flow::Continue => Err(PyError::new("SyntaxError", "'continue' outside loop")),
        }
    }

    /// Evaluate an expression against current state.
    pub fn eval(&mut self, expr: &str) -> Result<Value, PyError> {
        let e = parse_expression(expr)?;
        let mut frame = None;
        self.eval_expr(&e, &mut frame)
    }

    /// The Swift/T leaf convention: execute `code`, then evaluate `expr`
    /// and return its `str()` form as the task result.
    pub fn run(&mut self, code: &str, expr: &str) -> Result<String, PyError> {
        self.exec(code)?;
        Ok(self.eval(expr)?.to_display())
    }

    /// Take everything `print` produced since the last call.
    pub fn take_output(&mut self) -> String {
        std::mem::take(&mut self.output)
    }

    /// Set a global variable from the host (input marshaling).
    pub fn set_global(&mut self, name: &str, v: Value) {
        self.globals.insert(name.to_string(), v);
    }

    /// Read a global variable from the host (output marshaling).
    pub fn get_global(&self, name: &str) -> Option<&Value> {
        self.globals.get(name)
    }

    /// Number of global bindings (used to observe state retention).
    pub fn globals_len(&self) -> usize {
        self.globals.len()
    }

    // -- statements ------------------------------------------------------

    fn exec_block(
        &mut self,
        stmts: &[Stmt],
        frame: &mut Option<LocalFrame>,
    ) -> Result<Flow, PyError> {
        for s in stmts {
            match self.exec_stmt(s, frame)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &Stmt, frame: &mut Option<LocalFrame>) -> Result<Flow, PyError> {
        match stmt {
            Stmt::Expr(e) => {
                self.eval_expr(e, frame)?;
                Ok(Flow::Normal)
            }
            Stmt::Assign(t, e) => {
                let v = self.eval_expr(e, frame)?;
                self.assign(t, v, frame)?;
                Ok(Flow::Normal)
            }
            Stmt::AugAssign(t, op, e) => {
                let cur = match t {
                    Target::Name(n) => self.load_name(n, frame)?,
                    Target::Index(obj, idx) => {
                        let o = self.eval_expr(obj, frame)?;
                        let i = self.eval_expr(idx, frame)?;
                        index_get(&o, &i)?
                    }
                };
                let rhs = self.eval_expr(e, frame)?;
                let v = binary_op(op, &cur, &rhs)?;
                self.assign(t, v, frame)?;
                Ok(Flow::Normal)
            }
            Stmt::If(arms, orelse) => {
                for (cond, body) in arms {
                    if self.eval_expr(cond, frame)?.truthy() {
                        return self.exec_block(body, frame);
                    }
                }
                if let Some(body) = orelse {
                    return self.exec_block(body, frame);
                }
                Ok(Flow::Normal)
            }
            Stmt::While(cond, body) => {
                while self.eval_expr(cond, frame)?.truthy() {
                    match self.exec_block(body, frame)? {
                        Flow::Break => break,
                        Flow::Continue | Flow::Normal => {}
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For(var, iter, body) => {
                let it = self.eval_expr(iter, frame)?;
                let items = iterate(&it)?;
                for item in items {
                    self.store_name(var, item, frame);
                    match self.exec_block(body, frame)? {
                        Flow::Break => break,
                        Flow::Continue | Flow::Normal => {}
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Def(name, params, body) => {
                self.functions.insert(
                    name.clone(),
                    Rc::new(FuncDef {
                        params: params.clone(),
                        body: body.clone(),
                    }),
                );
                Ok(Flow::Normal)
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval_expr(e, frame)?,
                    None => Value::None,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
            Stmt::Pass => Ok(Flow::Normal),
            Stmt::Global(names) => {
                if let Some(f) = frame {
                    for n in names {
                        f.global_decls.insert(n.clone());
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Import(module) => {
                // Only `math` exists; importing it is a no-op because the
                // module object is built in.
                if module == "math" {
                    Ok(Flow::Normal)
                } else {
                    Err(PyError::new(
                        "ImportError",
                        format!("no module named '{module}' in this embedded interpreter"),
                    ))
                }
            }
            Stmt::Del(t) => {
                match t {
                    Target::Name(n) => {
                        let removed = match frame {
                            Some(f) if !f.global_decls.contains(n) => f.locals.remove(n).is_some(),
                            _ => self.globals.remove(n).is_some(),
                        };
                        if !removed && self.globals.remove(n).is_none() {
                            return name_err(n);
                        }
                    }
                    Target::Index(obj, idx) => {
                        let o = self.eval_expr(obj, frame)?;
                        let i = self.eval_expr(idx, frame)?;
                        index_del(&o, &i)?;
                    }
                }
                Ok(Flow::Normal)
            }
        }
    }

    fn assign(
        &mut self,
        t: &Target,
        v: Value,
        frame: &mut Option<LocalFrame>,
    ) -> Result<(), PyError> {
        match t {
            Target::Name(n) => {
                self.store_name(n, v, frame);
                Ok(())
            }
            Target::Index(obj, idx) => {
                let o = self.eval_expr(obj, frame)?;
                let i = self.eval_expr(idx, frame)?;
                index_set(&o, &i, v)
            }
        }
    }

    fn store_name(&mut self, name: &str, v: Value, frame: &mut Option<LocalFrame>) {
        match frame {
            Some(f) if !f.global_decls.contains(name) => {
                f.locals.insert(name.to_string(), v);
            }
            _ => {
                self.globals.insert(name.to_string(), v);
            }
        }
    }

    fn load_name(&self, name: &str, frame: &Option<LocalFrame>) -> Result<Value, PyError> {
        if let Some(f) = frame {
            if let Some(v) = f.locals.get(name) {
                return Ok(v.clone());
            }
        }
        if let Some(v) = self.globals.get(name) {
            return Ok(v.clone());
        }
        name_err(name)
    }

    // -- expressions -----------------------------------------------------

    fn eval_expr(&mut self, e: &Expr, frame: &mut Option<LocalFrame>) -> Result<Value, PyError> {
        match e {
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Float(v) => Ok(Value::Float(*v)),
            Expr::Str(s) => Ok(Value::str(s.clone())),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::NoneLit => Ok(Value::None),
            Expr::Name(n) => self.load_name(n, frame),
            Expr::FStr(parts) => {
                let mut out = String::new();
                for p in parts {
                    match p {
                        FStrPart::Lit(l) => out.push_str(l),
                        FStrPart::Expr(e) => out.push_str(&self.eval_expr(e, frame)?.to_display()),
                    }
                }
                Ok(Value::str(out))
            }
            Expr::List(items) => {
                let mut v = Vec::with_capacity(items.len());
                for i in items {
                    v.push(self.eval_expr(i, frame)?);
                }
                Ok(Value::list(v))
            }
            Expr::Dict(items) => {
                let mut m = BTreeMap::new();
                for (k, v) in items {
                    let key = match self.eval_expr(k, frame)? {
                        Value::Str(s) => (*s).clone(),
                        other => other.to_display(),
                    };
                    m.insert(key, self.eval_expr(v, frame)?);
                }
                Ok(Value::Dict(Rc::new(std::cell::RefCell::new(m))))
            }
            Expr::Unary("-", inner) => {
                let v = self.eval_expr(inner, frame)?;
                match v {
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    Value::Bool(b) => Ok(Value::Int(-(b as i64))),
                    other => type_err(format!(
                        "bad operand type for unary -: '{}'",
                        other.type_name()
                    )),
                }
            }
            Expr::Unary(op, _) => type_err(format!("unsupported unary operator {op}")),
            Expr::Not(inner) => Ok(Value::Bool(!self.eval_expr(inner, frame)?.truthy())),
            Expr::BoolOp(op, l, r) => {
                let lv = self.eval_expr(l, frame)?;
                match (*op, lv.truthy()) {
                    ("and", false) => Ok(lv),
                    ("or", true) => Ok(lv),
                    _ => self.eval_expr(r, frame),
                }
            }
            Expr::Binary(op, l, r) => {
                let lv = self.eval_expr(l, frame)?;
                let rv = self.eval_expr(r, frame)?;
                binary_op(op, &lv, &rv)
            }
            Expr::Compare(op, l, r) => {
                let lv = self.eval_expr(l, frame)?;
                let rv = self.eval_expr(r, frame)?;
                compare_op(op, &lv, &rv)
            }
            Expr::IfExp(cond, t, f) => {
                if self.eval_expr(cond, frame)?.truthy() {
                    self.eval_expr(t, frame)
                } else {
                    self.eval_expr(f, frame)
                }
            }
            Expr::Index(obj, idx) => {
                let o = self.eval_expr(obj, frame)?;
                let i = self.eval_expr(idx, frame)?;
                index_get(&o, &i)
            }
            Expr::Attr(obj, attr) => {
                // Module constants (math.pi); method *values* are not
                // first-class — they must be called.
                if let Expr::Name(n) = obj.as_ref() {
                    if n == "math" {
                        return math_const(attr);
                    }
                }
                type_err(format!("attribute '{attr}' is only callable"))
            }
            Expr::Call(callee, args) => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval_expr(a, frame)?);
                }
                match callee.as_ref() {
                    Expr::Name(n) => self.call_function(n, argv, frame),
                    Expr::Attr(obj, method) => {
                        if let Expr::Name(n) = obj.as_ref() {
                            if n == "math" {
                                return math_call(method, &argv);
                            }
                        }
                        let target = self.eval_expr(obj, frame)?;
                        self.call_method(&target, method, argv)
                    }
                    other => type_err(format!("{other:?} is not callable")),
                }
            }
        }
    }

    fn call_function(
        &mut self,
        name: &str,
        argv: Vec<Value>,
        frame: &mut Option<LocalFrame>,
    ) -> Result<Value, PyError> {
        if let Some(f) = self.functions.get(name).cloned() {
            if argv.len() != f.params.len() {
                return type_err(format!(
                    "{name}() takes {} arguments but {} were given",
                    f.params.len(),
                    argv.len()
                ));
            }
            if self.depth >= 200 {
                return Err(PyError::new(
                    "RecursionError",
                    "maximum recursion depth exceeded",
                ));
            }
            let mut locals = HashMap::new();
            for (p, v) in f.params.iter().zip(argv) {
                locals.insert(p.clone(), v);
            }
            let mut inner = Some(LocalFrame {
                locals,
                global_decls: HashSet::new(),
            });
            self.depth += 1;
            let flow = self.exec_block(&f.body, &mut inner);
            self.depth -= 1;
            return match flow? {
                Flow::Return(v) => Ok(v),
                _ => Ok(Value::None),
            };
        }
        let _ = frame;
        self.call_builtin(name, argv)
    }

    fn call_builtin(&mut self, name: &str, argv: Vec<Value>) -> Result<Value, PyError> {
        let n_args = argv.len();
        let want = |n: usize| -> Result<(), PyError> {
            if n_args != n {
                type_err(format!("{name}() takes {n} argument(s), got {n_args}"))
            } else {
                Ok(())
            }
        };
        match name {
            "print" => {
                let parts: Vec<String> = argv.iter().map(|v| v.to_display()).collect();
                self.output.push_str(&parts.join(" "));
                self.output.push('\n');
                Ok(Value::None)
            }
            "len" => {
                want(1)?;
                match &argv[0] {
                    Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
                    Value::List(l) => Ok(Value::Int(l.borrow().len() as i64)),
                    Value::Dict(d) => Ok(Value::Int(d.borrow().len() as i64)),
                    other => type_err(format!(
                        "object of type '{}' has no len()",
                        other.type_name()
                    )),
                }
            }
            "range" => {
                let (start, stop, step) = match n_args {
                    1 => (0, int_of(&argv[0])?, 1),
                    2 => (int_of(&argv[0])?, int_of(&argv[1])?, 1),
                    3 => (int_of(&argv[0])?, int_of(&argv[1])?, int_of(&argv[2])?),
                    _ => return type_err("range() takes 1-3 arguments"),
                };
                if step == 0 {
                    return Err(PyError::new("ValueError", "range() step must not be zero"));
                }
                let mut items = Vec::new();
                let mut i = start;
                while (step > 0 && i < stop) || (step < 0 && i > stop) {
                    items.push(Value::Int(i));
                    i += step;
                }
                Ok(Value::list(items))
            }
            "str" => {
                want(1)?;
                Ok(Value::str(argv[0].to_display()))
            }
            "repr" => {
                want(1)?;
                Ok(Value::str(argv[0].to_repr()))
            }
            "int" => {
                want(1)?;
                match &argv[0] {
                    Value::Int(i) => Ok(Value::Int(*i)),
                    Value::Float(f) => Ok(Value::Int(*f as i64)),
                    Value::Bool(b) => Ok(Value::Int(*b as i64)),
                    Value::Str(s) => s.trim().parse::<i64>().map(Value::Int).map_err(|_| {
                        PyError::new("ValueError", format!("invalid literal for int(): '{s}'"))
                    }),
                    other => type_err(format!("int() argument must not be {}", other.type_name())),
                }
            }
            "float" => {
                want(1)?;
                match &argv[0] {
                    Value::Float(f) => Ok(Value::Float(*f)),
                    Value::Int(i) => Ok(Value::Float(*i as f64)),
                    Value::Str(s) => s.trim().parse::<f64>().map(Value::Float).map_err(|_| {
                        PyError::new("ValueError", format!("could not convert '{s}' to float"))
                    }),
                    other => type_err(format!(
                        "float() argument must not be {}",
                        other.type_name()
                    )),
                }
            }
            "bool" => {
                want(1)?;
                Ok(Value::Bool(argv[0].truthy()))
            }
            "abs" => {
                want(1)?;
                match &argv[0] {
                    Value::Int(i) => Ok(Value::Int(i.abs())),
                    Value::Float(f) => Ok(Value::Float(f.abs())),
                    other => type_err(format!("bad operand for abs(): {}", other.type_name())),
                }
            }
            "round" => match n_args {
                1 => Ok(Value::Int(float_of(&argv[0])?.round() as i64)),
                2 => {
                    let nd = int_of(&argv[1])?;
                    let m = 10f64.powi(nd as i32);
                    Ok(Value::Float((float_of(&argv[0])? * m).round() / m))
                }
                _ => type_err("round() takes 1-2 arguments"),
            },
            "min" | "max" => {
                let items: Vec<Value> = if n_args == 1 {
                    iterate(&argv[0])?
                } else {
                    argv
                };
                if items.is_empty() {
                    return Err(PyError::new("ValueError", format!("{name}() arg is empty")));
                }
                let mut best = items[0].clone();
                for v in &items[1..] {
                    let take = match compare_op("<", v, &best)? {
                        Value::Bool(b) => {
                            if name == "min" {
                                b
                            } else {
                                !b && !v.py_eq(&best)
                            }
                        }
                        _ => false,
                    };
                    if take {
                        best = v.clone();
                    }
                }
                Ok(best)
            }
            "sum" => {
                want(1)?;
                let items = iterate(&argv[0])?;
                let mut acc = Value::Int(0);
                for v in items {
                    acc = binary_op("+", &acc, &v)?;
                }
                Ok(acc)
            }
            "sorted" => {
                want(1)?;
                let mut items = iterate(&argv[0])?;
                let mut fail = None;
                items.sort_by(|a, b| match compare_op("<", a, b) {
                    Ok(Value::Bool(true)) => std::cmp::Ordering::Less,
                    Ok(_) => {
                        if a.py_eq(b) {
                            std::cmp::Ordering::Equal
                        } else {
                            std::cmp::Ordering::Greater
                        }
                    }
                    Err(e) => {
                        fail = Some(e);
                        std::cmp::Ordering::Equal
                    }
                });
                if let Some(e) = fail {
                    return Err(e);
                }
                Ok(Value::list(items))
            }
            "list" => {
                want(1)?;
                Ok(Value::list(iterate(&argv[0])?))
            }
            "type" => {
                want(1)?;
                Ok(Value::str(format!("<class '{}'>", argv[0].type_name())))
            }
            _ => name_err(name),
        }
    }

    fn call_method(
        &mut self,
        target: &Value,
        method: &str,
        argv: Vec<Value>,
    ) -> Result<Value, PyError> {
        match target {
            Value::Str(s) => str_method(s, method, &argv),
            Value::List(l) => list_method(l, method, argv),
            Value::Dict(d) => dict_method(d, method, &argv),
            other => type_err(format!(
                "'{}' object has no method '{method}'",
                other.type_name()
            )),
        }
    }
}

struct LocalFrame {
    locals: HashMap<String, Value>,
    global_decls: HashSet<String>,
}

fn int_of(v: &Value) -> Result<i64, PyError> {
    v.as_int()
        .ok_or_else(|| PyError::new("TypeError", format!("expected int, got {}", v.type_name())))
}

fn float_of(v: &Value) -> Result<f64, PyError> {
    v.as_number().ok_or_else(|| {
        PyError::new(
            "TypeError",
            format!("expected number, got {}", v.type_name()),
        )
    })
}

fn iterate(v: &Value) -> Result<Vec<Value>, PyError> {
    match v {
        Value::List(l) => Ok(l.borrow().clone()),
        Value::Str(s) => Ok(s.chars().map(|c| Value::str(c.to_string())).collect()),
        Value::Dict(d) => Ok(d.borrow().keys().map(|k| Value::str(k.clone())).collect()),
        other => type_err(format!("'{}' object is not iterable", other.type_name())),
    }
}

/// Python's `//`: quotient floored toward negative infinity (`%` then
/// takes the divisor's sign).
fn py_floor_div(x: i64, y: i64) -> i64 {
    let q = x.wrapping_div(y);
    if (x % y != 0) && ((x < 0) != (y < 0)) {
        q - 1
    } else {
        q
    }
}

fn binary_op(op: &str, l: &Value, r: &Value) -> Result<Value, PyError> {
    use Value::*;
    // String/list structural operators first.
    match (op, l, r) {
        ("+", Str(a), Str(b)) => return Ok(Value::str(format!("{a}{b}"))),
        ("+", List(a), List(b)) => {
            let mut v = a.borrow().clone();
            v.extend(b.borrow().iter().cloned());
            return Ok(Value::list(v));
        }
        ("*", Str(a), Int(n)) | ("*", Int(n), Str(a)) => {
            return Ok(Value::str(a.repeat((*n).max(0) as usize)))
        }
        ("*", List(a), Int(n)) | ("*", Int(n), List(a)) => {
            let mut v = Vec::new();
            for _ in 0..(*n).max(0) {
                v.extend(a.borrow().iter().cloned());
            }
            return Ok(Value::list(v));
        }
        ("%", Str(_), _) => {
            return type_err("%-formatting is not supported; use f-strings");
        }
        _ => {}
    }
    // Numeric path.
    let (a, b) = match (l.as_number(), r.as_number()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return type_err(format!(
                "unsupported operand type(s) for {op}: '{}' and '{}'",
                l.type_name(),
                r.type_name()
            ))
        }
    };
    let both_int = l.as_int().is_some() && r.as_int().is_some();
    let (ia, ib) = (l.as_int().unwrap_or(0), r.as_int().unwrap_or(0));
    match op {
        "+" => Ok(if both_int {
            Value::Int(ia.wrapping_add(ib))
        } else {
            Value::Float(a + b)
        }),
        "-" => Ok(if both_int {
            Value::Int(ia.wrapping_sub(ib))
        } else {
            Value::Float(a - b)
        }),
        "*" => Ok(if both_int {
            Value::Int(ia.wrapping_mul(ib))
        } else {
            Value::Float(a * b)
        }),
        "/" => {
            if b == 0.0 {
                return Err(PyError::new("ZeroDivisionError", "division by zero"));
            }
            Ok(Value::Float(a / b))
        }
        "//" => {
            if b == 0.0 {
                return Err(PyError::new(
                    "ZeroDivisionError",
                    "integer division by zero",
                ));
            }
            if both_int {
                Ok(Value::Int(py_floor_div(ia, ib)))
            } else {
                Ok(Value::Float((a / b).floor()))
            }
        }
        "%" => {
            if b == 0.0 {
                return Err(PyError::new("ZeroDivisionError", "modulo by zero"));
            }
            if both_int {
                Ok(Value::Int(
                    ia.wrapping_sub(ib.wrapping_mul(py_floor_div(ia, ib))),
                ))
            } else {
                Ok(Value::Float(a - b * (a / b).floor()))
            }
        }
        "**" => {
            if both_int && ib >= 0 {
                let mut acc: i64 = 1;
                for _ in 0..ib {
                    acc = acc.wrapping_mul(ia);
                }
                Ok(Value::Int(acc))
            } else {
                Ok(Value::Float(a.powf(b)))
            }
        }
        other => type_err(format!("unknown operator {other}")),
    }
}

fn compare_op(op: &str, l: &Value, r: &Value) -> Result<Value, PyError> {
    if op == "in" {
        return match r {
            Value::List(items) => Ok(Value::Bool(items.borrow().iter().any(|v| v.py_eq(l)))),
            Value::Str(hay) => match l {
                Value::Str(needle) => Ok(Value::Bool(hay.contains(needle.as_str()))),
                other => type_err(format!(
                    "'in <string>' requires string, not {}",
                    other.type_name()
                )),
            },
            Value::Dict(d) => Ok(Value::Bool(d.borrow().contains_key(&l.to_display()))),
            other => type_err(format!(
                "argument of type '{}' is not iterable",
                other.type_name()
            )),
        };
    }
    if op == "==" {
        return Ok(Value::Bool(l.py_eq(r)));
    }
    if op == "!=" {
        return Ok(Value::Bool(!l.py_eq(r)));
    }
    let ord = match (l, r) {
        (Value::Str(a), Value::Str(b)) => a.cmp(b),
        _ => {
            let (a, b) = match (l.as_number(), r.as_number()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return type_err(format!(
                        "'{op}' not supported between '{}' and '{}'",
                        l.type_name(),
                        r.type_name()
                    ))
                }
            };
            a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal)
        }
    };
    use std::cmp::Ordering::*;
    Ok(Value::Bool(match op {
        "<" => ord == Less,
        ">" => ord == Greater,
        "<=" => ord != Greater,
        ">=" => ord != Less,
        _ => false,
    }))
}

fn index_get(obj: &Value, idx: &Value) -> Result<Value, PyError> {
    match obj {
        Value::List(l) => {
            let l = l.borrow();
            let i = normalize_index(int_of(idx)?, l.len())?;
            Ok(l[i].clone())
        }
        Value::Str(s) => {
            let cs: Vec<char> = s.chars().collect();
            let i = normalize_index(int_of(idx)?, cs.len())?;
            Ok(Value::str(cs[i].to_string()))
        }
        Value::Dict(d) => {
            let key = idx.to_display();
            d.borrow()
                .get(&key)
                .cloned()
                .ok_or_else(|| PyError::new("KeyError", format!("'{key}'")))
        }
        other => type_err(format!(
            "'{}' object is not subscriptable",
            other.type_name()
        )),
    }
}

fn index_set(obj: &Value, idx: &Value, v: Value) -> Result<(), PyError> {
    match obj {
        Value::List(l) => {
            let mut l = l.borrow_mut();
            let len = l.len();
            let i = normalize_index(int_of(idx)?, len)?;
            l[i] = v;
            Ok(())
        }
        Value::Dict(d) => {
            d.borrow_mut().insert(idx.to_display(), v);
            Ok(())
        }
        other => type_err(format!(
            "'{}' object does not support item assignment",
            other.type_name()
        )),
    }
}

fn index_del(obj: &Value, idx: &Value) -> Result<(), PyError> {
    match obj {
        Value::List(l) => {
            let mut l = l.borrow_mut();
            let len = l.len();
            let i = normalize_index(int_of(idx)?, len)?;
            l.remove(i);
            Ok(())
        }
        Value::Dict(d) => {
            let key = idx.to_display();
            d.borrow_mut()
                .remove(&key)
                .map(|_| ())
                .ok_or_else(|| PyError::new("KeyError", format!("'{key}'")))
        }
        other => type_err(format!(
            "'{}' object doesn't support item deletion",
            other.type_name()
        )),
    }
}

fn normalize_index(i: i64, len: usize) -> Result<usize, PyError> {
    let adjusted = if i < 0 { i + len as i64 } else { i };
    if adjusted < 0 || adjusted as usize >= len {
        return Err(PyError::new("IndexError", "index out of range"));
    }
    Ok(adjusted as usize)
}

fn math_const(name: &str) -> Result<Value, PyError> {
    match name {
        "pi" => Ok(Value::Float(std::f64::consts::PI)),
        "e" => Ok(Value::Float(std::f64::consts::E)),
        "tau" => Ok(Value::Float(std::f64::consts::TAU)),
        "inf" => Ok(Value::Float(f64::INFINITY)),
        "nan" => Ok(Value::Float(f64::NAN)),
        other => Err(PyError::new(
            "AttributeError",
            format!("module 'math' has no attribute '{other}'"),
        )),
    }
}

fn math_call(name: &str, argv: &[Value]) -> Result<Value, PyError> {
    let one = || -> Result<f64, PyError> {
        if argv.len() != 1 {
            return Err(PyError::new(
                "TypeError",
                format!("math.{name}() takes 1 argument"),
            ));
        }
        float_of(&argv[0])
    };
    match name {
        "sqrt" => Ok(Value::Float(one()?.sqrt())),
        "sin" => Ok(Value::Float(one()?.sin())),
        "cos" => Ok(Value::Float(one()?.cos())),
        "tan" => Ok(Value::Float(one()?.tan())),
        "exp" => Ok(Value::Float(one()?.exp())),
        "log" => match argv.len() {
            1 => Ok(Value::Float(float_of(&argv[0])?.ln())),
            2 => Ok(Value::Float(float_of(&argv[0])?.log(float_of(&argv[1])?))),
            _ => Err(PyError::new("TypeError", "math.log() takes 1-2 arguments")),
        },
        "log10" => Ok(Value::Float(one()?.log10())),
        "floor" => Ok(Value::Int(one()?.floor() as i64)),
        "ceil" => Ok(Value::Int(one()?.ceil() as i64)),
        "fabs" => Ok(Value::Float(one()?.abs())),
        "pow" => {
            if argv.len() != 2 {
                return Err(PyError::new("TypeError", "math.pow() takes 2 arguments"));
            }
            Ok(Value::Float(float_of(&argv[0])?.powf(float_of(&argv[1])?)))
        }
        "hypot" => {
            if argv.len() != 2 {
                return Err(PyError::new("TypeError", "math.hypot() takes 2 arguments"));
            }
            Ok(Value::Float(float_of(&argv[0])?.hypot(float_of(&argv[1])?)))
        }
        other => Err(PyError::new(
            "AttributeError",
            format!("module 'math' has no attribute '{other}'"),
        )),
    }
}

fn str_method(s: &Rc<String>, method: &str, argv: &[Value]) -> Result<Value, PyError> {
    let str_arg = |i: usize| -> Result<String, PyError> {
        match argv.get(i) {
            Some(Value::Str(v)) => Ok((**v).clone()),
            Some(other) => type_err(format!("expected str argument, got {}", other.type_name())),
            None => type_err("missing argument"),
        }
    };
    match method {
        "upper" => Ok(Value::str(s.to_uppercase())),
        "lower" => Ok(Value::str(s.to_lowercase())),
        "strip" => Ok(Value::str(s.trim().to_string())),
        "lstrip" => Ok(Value::str(s.trim_start().to_string())),
        "rstrip" => Ok(Value::str(s.trim_end().to_string())),
        "split" => {
            let parts: Vec<Value> = if argv.is_empty() {
                s.split_whitespace().map(Value::str).collect()
            } else {
                let sep = str_arg(0)?;
                s.split(sep.as_str()).map(Value::str).collect()
            };
            Ok(Value::list(parts))
        }
        "join" => {
            let items = match argv.first() {
                Some(v) => iterate(v)?,
                None => return type_err("join() takes one argument"),
            };
            let parts: Result<Vec<String>, PyError> = items
                .iter()
                .map(|v| match v {
                    Value::Str(x) => Ok((**x).clone()),
                    other => type_err(format!(
                        "sequence item: expected str, {} found",
                        other.type_name()
                    )),
                })
                .collect();
            Ok(Value::str(parts?.join(s.as_str())))
        }
        "replace" => Ok(Value::str(s.replace(&str_arg(0)?, &str_arg(1)?))),
        "startswith" => Ok(Value::Bool(s.starts_with(&str_arg(0)?))),
        "endswith" => Ok(Value::Bool(s.ends_with(&str_arg(0)?))),
        "find" => {
            let needle = str_arg(0)?;
            Ok(Value::Int(match s.find(&needle) {
                Some(b) => s[..b].chars().count() as i64,
                None => -1,
            }))
        }
        "count" => {
            let needle = str_arg(0)?;
            if needle.is_empty() {
                return Ok(Value::Int(s.chars().count() as i64 + 1));
            }
            Ok(Value::Int(s.matches(&needle).count() as i64))
        }
        "isdigit" => Ok(Value::Bool(
            !s.is_empty() && s.chars().all(|c| c.is_ascii_digit()),
        )),
        other => type_err(format!("'str' object has no method '{other}'")),
    }
}

fn list_method(
    l: &Rc<std::cell::RefCell<Vec<Value>>>,
    method: &str,
    argv: Vec<Value>,
) -> Result<Value, PyError> {
    match method {
        "append" => {
            if argv.len() != 1 {
                return type_err("append() takes exactly one argument");
            }
            l.borrow_mut().push(argv.into_iter().next().unwrap());
            Ok(Value::None)
        }
        "extend" => {
            if argv.len() != 1 {
                return type_err("extend() takes exactly one argument");
            }
            let items = iterate(&argv[0])?;
            l.borrow_mut().extend(items);
            Ok(Value::None)
        }
        "pop" => {
            let mut borrow = l.borrow_mut();
            let len = borrow.len();
            if len == 0 {
                return Err(PyError::new("IndexError", "pop from empty list"));
            }
            let i = if argv.is_empty() {
                len - 1
            } else {
                normalize_index(int_of(&argv[0])?, len)?
            };
            Ok(borrow.remove(i))
        }
        "insert" => {
            if argv.len() != 2 {
                return type_err("insert() takes exactly two arguments");
            }
            let mut borrow = l.borrow_mut();
            let len = borrow.len();
            let i = int_of(&argv[0])?.clamp(0, len as i64) as usize;
            borrow.insert(i, argv[1].clone());
            Ok(Value::None)
        }
        "index" => {
            if argv.len() != 1 {
                return type_err("index() takes exactly one argument");
            }
            l.borrow()
                .iter()
                .position(|v| v.py_eq(&argv[0]))
                .map(|p| Value::Int(p as i64))
                .ok_or_else(|| PyError::new("ValueError", "value not in list"))
        }
        "reverse" => {
            l.borrow_mut().reverse();
            Ok(Value::None)
        }
        "sort" => {
            let mut items = l.borrow().clone();
            let mut fail = None;
            items.sort_by(|a, b| match compare_op("<", a, b) {
                Ok(Value::Bool(true)) => std::cmp::Ordering::Less,
                Ok(_) => {
                    if a.py_eq(b) {
                        std::cmp::Ordering::Equal
                    } else {
                        std::cmp::Ordering::Greater
                    }
                }
                Err(e) => {
                    fail = Some(e);
                    std::cmp::Ordering::Equal
                }
            });
            if let Some(e) = fail {
                return Err(e);
            }
            *l.borrow_mut() = items;
            Ok(Value::None)
        }
        other => type_err(format!("'list' object has no method '{other}'")),
    }
}

fn dict_method(
    d: &Rc<std::cell::RefCell<BTreeMap<String, Value>>>,
    method: &str,
    argv: &[Value],
) -> Result<Value, PyError> {
    match method {
        "keys" => Ok(Value::list(
            d.borrow().keys().map(|k| Value::str(k.clone())).collect(),
        )),
        "values" => Ok(Value::list(d.borrow().values().cloned().collect())),
        "items" => Ok(Value::list(
            d.borrow()
                .iter()
                .map(|(k, v)| Value::list(vec![Value::str(k.clone()), v.clone()]))
                .collect(),
        )),
        "get" => {
            let key = argv
                .first()
                .map(|v| v.to_display())
                .ok_or_else(|| PyError::new("TypeError", "get() needs a key"))?;
            Ok(d.borrow()
                .get(&key)
                .cloned()
                .unwrap_or_else(|| argv.get(1).cloned().unwrap_or(Value::None)))
        }
        other => type_err(format!("'dict' object has no method '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(code: &str, expr: &str) -> String {
        Python::new().run(code, expr).unwrap()
    }

    #[test]
    fn arithmetic_semantics() {
        assert_eq!(run("", "7 // 2"), "3");
        assert_eq!(run("", "7 / 2"), "3.5");
        assert_eq!(run("", "-7 // 2"), "-4");
        assert_eq!(run("", "-7 % 3"), "2");
        assert_eq!(run("", "7 // -2"), "-4");
        assert_eq!(run("", "7 % -3"), "-2"); // sign follows divisor
        assert_eq!(run("", "2 ** 10"), "1024");
        assert_eq!(run("", "2 ** -1"), "0.5");
    }

    #[test]
    fn string_ops() {
        assert_eq!(run("", "'ab' + 'cd'"), "abcd");
        assert_eq!(run("", "'ab' * 3"), "ababab");
        assert_eq!(run("", "len('héllo')"), "5");
        assert_eq!(run("", "'HELLO'.lower()"), "hello");
        assert_eq!(run("", "'a,b,c'.split(',')"), "['a', 'b', 'c']");
        assert_eq!(run("", "'-'.join(['x', 'y'])"), "x-y");
    }

    #[test]
    fn fstrings() {
        assert_eq!(run("n = 5", "f'value is {n * 2}!'"), "value is 10!");
        assert_eq!(run("", "f'{{literal}}'"), "{literal}");
    }

    #[test]
    fn lists_and_dicts() {
        assert_eq!(run("a = [3, 1, 2]\na.sort()", "a"), "[1, 2, 3]");
        assert_eq!(run("a = [1]\na.append(2)", "a[-1]"), "2");
        assert_eq!(run("d = {'x': 1}\nd['y'] = 2", "d['y']"), "2");
        assert_eq!(run("d = {'x': 1}", "d.get('z', 9)"), "9");
        assert_eq!(run("", "sorted([3, 1, 2])"), "[1, 2, 3]");
    }

    #[test]
    fn loops_and_conditionals() {
        let code = r#"
total = 0
for i in range(10):
    if i % 2 == 0:
        total += i
"#;
        assert_eq!(run(code, "total"), "20");
        assert_eq!(run("x = 0\nwhile x < 5:\n    x += 1", "x"), "5");
    }

    #[test]
    fn functions_locals_and_globals() {
        let code = r#"
g = 0
def bump(n):
    global g
    g = g + n
    local = 99
    return local
r = bump(5)
"#;
        let mut py = Python::new();
        py.exec(code).unwrap();
        assert_eq!(py.eval("g").unwrap().to_display(), "5");
        assert_eq!(py.eval("r").unwrap().to_display(), "99");
        assert!(py.eval("local").is_err(), "locals must not leak");
    }

    #[test]
    fn math_module() {
        assert_eq!(run("import math", "math.sqrt(16)"), "4.0");
        assert_eq!(run("", "math.floor(3.7)"), "3");
        let pi = run("", "math.pi");
        assert!(pi.starts_with("3.14159"));
    }

    #[test]
    fn errors_have_python_flavor() {
        let mut py = Python::new();
        assert!(py
            .eval("nope")
            .unwrap_err()
            .message
            .starts_with("NameError"));
        assert!(py
            .eval("1 / 0")
            .unwrap_err()
            .message
            .starts_with("ZeroDivisionError"));
        assert!(py
            .eval("[1][5]")
            .unwrap_err()
            .message
            .starts_with("IndexError"));
        assert!(py
            .eval("{'a': 1}['b']")
            .unwrap_err()
            .message
            .starts_with("KeyError"));
        assert!(py
            .exec("def f(): return f()\nf()")
            .unwrap_err()
            .message
            .starts_with("RecursionError"));
    }

    #[test]
    fn print_captured() {
        let mut py = Python::new();
        py.exec("print('a', 1)\nprint(2.5)").unwrap();
        assert_eq!(py.take_output(), "a 1\n2.5\n");
        assert_eq!(py.take_output(), "");
    }

    #[test]
    fn membership_and_bool_logic() {
        assert_eq!(run("", "2 in [1, 2]"), "True");
        assert_eq!(run("", "'el' in 'hello'"), "True");
        assert_eq!(run("", "5 not in [1, 2]"), "True");
        assert_eq!(run("", "0 or 'fallback'"), "fallback");
        assert_eq!(run("", "1 and 2"), "2");
        assert_eq!(run("", "not []"), "True");
    }

    #[test]
    fn negative_indexing() {
        assert_eq!(run("a = [1, 2, 3]", "a[-1]"), "3");
        assert_eq!(run("", "'abc'[-2]"), "b");
    }

    #[test]
    fn host_marshaling() {
        let mut py = Python::new();
        py.set_global("inputs", Value::list(vec![Value::Int(1), Value::Int(2)]));
        py.exec("out = sum(inputs) * 10").unwrap();
        assert_eq!(py.get_global("out").unwrap().to_display(), "30");
    }

    #[test]
    fn conditional_expression() {
        assert_eq!(run("x = -4", "'neg' if x < 0 else 'pos'"), "neg");
    }

    #[test]
    fn del_statement() {
        let mut py = Python::new();
        py.exec("x = 1\ndel x").unwrap();
        assert!(py.eval("x").is_err());
        assert_eq!(run("a = [1, 2, 3]\ndel a[1]", "a"), "[1, 3]");
    }
}

#[cfg(test)]
mod oracle_tests {
    //! Property test: arithmetic matches Python 3 semantics (true
    //! division, floor division, euclidean-style modulo) via a Rust
    //! oracle.

    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Node {
        Lit(i32),
        Add(Box<Node>, Box<Node>),
        Sub(Box<Node>, Box<Node>),
        Mul(Box<Node>, Box<Node>),
        FloorDiv(Box<Node>, Box<Node>),
        Mod(Box<Node>, Box<Node>),
    }

    fn node_strategy() -> impl Strategy<Value = Node> {
        let leaf = (-200i32..200).prop_map(Node::Lit);
        leaf.prop_recursive(3, 24, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Node::Add(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Node::Sub(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Node::Mul(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Node::FloorDiv(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Node::Mod(Box::new(a), Box::new(b))),
            ]
        })
    }

    fn render(n: &Node) -> String {
        match n {
            Node::Lit(v) => {
                if *v < 0 {
                    format!("(0 - {})", -(*v as i64))
                } else {
                    v.to_string()
                }
            }
            Node::Add(a, b) => format!("({} + {})", render(a), render(b)),
            Node::Sub(a, b) => format!("({} - {})", render(a), render(b)),
            Node::Mul(a, b) => format!("({} * {})", render(a), render(b)),
            Node::FloorDiv(a, b) => format!("({} // {})", render(a), render(b)),
            Node::Mod(a, b) => format!("({} % {})", render(a), render(b)),
        }
    }

    /// CPython semantics for ints: // floors, % follows the divisor.
    /// `None` = must raise (ZeroDivisionError or overflow, which we treat
    /// as out of scope and skip).
    fn oracle(n: &Node) -> Result<Option<i64>, ()> {
        Ok(match n {
            Node::Lit(v) => Some(*v as i64),
            Node::Add(a, b) => match (oracle(a)?, oracle(b)?) {
                (Some(x), Some(y)) => Some(x.checked_add(y).ok_or(())?),
                _ => None,
            },
            Node::Sub(a, b) => match (oracle(a)?, oracle(b)?) {
                (Some(x), Some(y)) => Some(x.checked_sub(y).ok_or(())?),
                _ => None,
            },
            Node::Mul(a, b) => match (oracle(a)?, oracle(b)?) {
                (Some(x), Some(y)) => Some(x.checked_mul(y).ok_or(())?),
                _ => None,
            },
            Node::FloorDiv(a, b) => match (oracle(a)?, oracle(b)?) {
                (Some(_), Some(0)) => None,
                (Some(x), Some(y)) => Some(py_floor_div(x, y)),
                _ => None,
            },
            Node::Mod(a, b) => match (oracle(a)?, oracle(b)?) {
                (Some(_), Some(0)) => None,
                (Some(x), Some(y)) => Some(x - y * py_floor_div(x, y)),
                _ => None,
            },
        })
    }

    proptest! {
        #[test]
        fn arithmetic_matches_python_oracle(node in node_strategy()) {
            let Ok(expected) = oracle(&node) else {
                return Ok(()); // overflow: out of scope
            };
            let src = render(&node);
            let mut py = Python::new();
            match (py.eval(&src), expected) {
                (Ok(v), Some(e)) => {
                    prop_assert_eq!(v.to_display(), e.to_string(), "src: {}", src);
                }
                (Err(err), None) => {
                    prop_assert!(
                        err.message.contains("ZeroDivisionError"),
                        "src {}: wrong error {}",
                        src,
                        err.message
                    );
                }
                (got, want) => {
                    return Err(TestCaseError::fail(format!(
                        "src {src}: got {got:?}, want {want:?}"
                    )));
                }
            }
        }
    }
}
