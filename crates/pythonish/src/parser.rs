//! Recursive-descent parser producing the mini-Python AST.

use std::rc::Rc;

use crate::lexer::{tokenize, FPart, Tok};
use crate::value::PyError;

#[derive(Debug, Clone)]
pub enum Stmt {
    Expr(Expr),
    Assign(Target, Expr),
    AugAssign(Target, &'static str, Expr),
    If(Vec<(Expr, Vec<Stmt>)>, Option<Vec<Stmt>>),
    While(Expr, Vec<Stmt>),
    For(String, Expr, Vec<Stmt>),
    Def(String, Vec<String>, Rc<Vec<Stmt>>),
    Return(Option<Expr>),
    Break,
    Continue,
    Pass,
    Global(Vec<String>),
    Import(String),
    Del(Target),
}

#[derive(Debug, Clone)]
pub enum Target {
    Name(String),
    Index(Box<Expr>, Box<Expr>),
}

#[derive(Debug, Clone)]
pub enum FStrPart {
    Lit(String),
    Expr(Box<Expr>),
}

#[derive(Debug, Clone)]
pub enum Expr {
    Int(i64),
    Float(f64),
    Str(String),
    FStr(Vec<FStrPart>),
    Bool(bool),
    NoneLit,
    Name(String),
    List(Vec<Expr>),
    Dict(Vec<(Expr, Expr)>),
    Unary(&'static str, Box<Expr>),
    Binary(&'static str, Box<Expr>, Box<Expr>),
    BoolOp(&'static str, Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    Compare(&'static str, Box<Expr>, Box<Expr>),
    Call(Box<Expr>, Vec<Expr>),
    Attr(Box<Expr>, String),
    Index(Box<Expr>, Box<Expr>),
    IfExp(Box<Expr>, Box<Expr>, Box<Expr>),
}

fn err<T>(msg: impl std::fmt::Display) -> Result<T, PyError> {
    Err(PyError::new("SyntaxError", msg))
}

/// Parse a module (sequence of statements).
pub fn parse_module(src: &str) -> Result<Vec<Stmt>, PyError> {
    let toks = tokenize(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut stmts = Vec::new();
    while !p.at_end() {
        p.skip_newlines();
        if p.at_end() {
            break;
        }
        stmts.push(p.statement()?);
    }
    Ok(stmts)
}

/// Parse a single expression (the Swift/T leaf "result expression").
pub fn parse_expression(src: &str) -> Result<Expr, PyError> {
    let toks = tokenize(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.skip_newlines();
    let e = p.expr()?;
    p.skip_newlines();
    if !p.at_end() {
        return err(format!("trailing tokens after expression: {:?}", p.peek()));
    }
    Ok(e)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }
    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }
    fn eat_op(&mut self, op: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Op(o)) if *o == op) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
    fn expect_op(&mut self, op: &'static str) -> Result<(), PyError> {
        if self.eat_op(op) {
            Ok(())
        } else {
            err(format!("expected '{op}', found {:?}", self.peek()))
        }
    }
    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Kw(k)) if *k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
    fn skip_newlines(&mut self) {
        while matches!(self.peek(), Some(Tok::Newline)) {
            self.pos += 1;
        }
    }
    fn expect_newline(&mut self) -> Result<(), PyError> {
        match self.bump() {
            Some(Tok::Newline) | None => Ok(()),
            other => err(format!("expected end of line, found {other:?}")),
        }
    }

    // -- statements ----------------------------------------------------

    fn statement(&mut self) -> Result<Stmt, PyError> {
        match self.peek() {
            Some(Tok::Kw("if")) => self.if_stmt(),
            Some(Tok::Kw("while")) => self.while_stmt(),
            Some(Tok::Kw("for")) => self.for_stmt(),
            Some(Tok::Kw("def")) => self.def_stmt(),
            _ => {
                let s = self.simple_stmt()?;
                self.expect_newline()?;
                Ok(s)
            }
        }
    }

    fn simple_stmt(&mut self) -> Result<Stmt, PyError> {
        match self.peek() {
            Some(Tok::Kw("return")) => {
                self.bump();
                if matches!(self.peek(), Some(Tok::Newline) | None) {
                    Ok(Stmt::Return(None))
                } else {
                    Ok(Stmt::Return(Some(self.expr()?)))
                }
            }
            Some(Tok::Kw("break")) => {
                self.bump();
                Ok(Stmt::Break)
            }
            Some(Tok::Kw("continue")) => {
                self.bump();
                Ok(Stmt::Continue)
            }
            Some(Tok::Kw("pass")) => {
                self.bump();
                Ok(Stmt::Pass)
            }
            Some(Tok::Kw("global")) => {
                self.bump();
                let mut names = Vec::new();
                loop {
                    match self.bump() {
                        Some(Tok::Name(n)) => names.push(n),
                        other => return err(format!("expected name after global, got {other:?}")),
                    }
                    if !self.eat_op(",") {
                        break;
                    }
                }
                Ok(Stmt::Global(names))
            }
            Some(Tok::Kw("import")) => {
                self.bump();
                match self.bump() {
                    Some(Tok::Name(n)) => Ok(Stmt::Import(n)),
                    other => err(format!("expected module name, got {other:?}")),
                }
            }
            Some(Tok::Kw("del")) => {
                self.bump();
                let e = self.expr()?;
                Ok(Stmt::Del(expr_to_target(e)?))
            }
            _ => {
                let e = self.expr()?;
                // Assignment forms.
                if self.eat_op("=") {
                    let rhs = self.expr()?;
                    return Ok(Stmt::Assign(expr_to_target(e)?, rhs));
                }
                for (aug, base) in [
                    ("+=", "+"),
                    ("-=", "-"),
                    ("*=", "*"),
                    ("/=", "/"),
                    ("%=", "%"),
                ] {
                    if self.eat_op(aug) {
                        let rhs = self.expr()?;
                        return Ok(Stmt::AugAssign(expr_to_target(e)?, base, rhs));
                    }
                }
                Ok(Stmt::Expr(e))
            }
        }
    }

    /// Parse `: suite` — either an inline simple statement or an indented
    /// block.
    fn suite(&mut self) -> Result<Vec<Stmt>, PyError> {
        self.expect_op(":")?;
        if !matches!(self.peek(), Some(Tok::Newline)) {
            let s = self.simple_stmt()?;
            self.expect_newline()?;
            return Ok(vec![s]);
        }
        self.bump(); // newline
        self.skip_newlines();
        if !matches!(self.peek(), Some(Tok::Indent)) {
            return err("expected an indented block");
        }
        self.bump();
        let mut stmts = Vec::new();
        loop {
            self.skip_newlines();
            match self.peek() {
                Some(Tok::Dedent) => {
                    self.bump();
                    break;
                }
                None => break,
                _ => stmts.push(self.statement()?),
            }
        }
        Ok(stmts)
    }

    fn if_stmt(&mut self) -> Result<Stmt, PyError> {
        self.bump(); // if
        let mut arms = Vec::new();
        let cond = self.expr()?;
        let body = self.suite()?;
        arms.push((cond, body));
        let mut orelse = None;
        loop {
            self.skip_newlines();
            if self.eat_kw("elif") {
                let c = self.expr()?;
                let b = self.suite()?;
                arms.push((c, b));
            } else if self.eat_kw("else") {
                orelse = Some(self.suite()?);
                break;
            } else {
                break;
            }
        }
        Ok(Stmt::If(arms, orelse))
    }

    fn while_stmt(&mut self) -> Result<Stmt, PyError> {
        self.bump();
        let cond = self.expr()?;
        let body = self.suite()?;
        Ok(Stmt::While(cond, body))
    }

    fn for_stmt(&mut self) -> Result<Stmt, PyError> {
        self.bump();
        let var = match self.bump() {
            Some(Tok::Name(n)) => n,
            other => return err(format!("expected loop variable, got {other:?}")),
        };
        if !self.eat_kw("in") {
            return err("expected 'in' in for statement");
        }
        let iter = self.expr()?;
        let body = self.suite()?;
        Ok(Stmt::For(var, iter, body))
    }

    fn def_stmt(&mut self) -> Result<Stmt, PyError> {
        self.bump();
        let name = match self.bump() {
            Some(Tok::Name(n)) => n,
            other => return err(format!("expected function name, got {other:?}")),
        };
        self.expect_op("(")?;
        let mut params = Vec::new();
        if !self.eat_op(")") {
            loop {
                match self.bump() {
                    Some(Tok::Name(n)) => params.push(n),
                    other => return err(format!("expected parameter name, got {other:?}")),
                }
                if self.eat_op(")") {
                    break;
                }
                self.expect_op(",")?;
            }
        }
        let body = self.suite()?;
        Ok(Stmt::Def(name, params, Rc::new(body)))
    }

    // -- expressions ----------------------------------------------------

    fn expr(&mut self) -> Result<Expr, PyError> {
        // Conditional expression: `a if c else b`.
        let body = self.or_expr()?;
        if self.eat_kw("if") {
            let cond = self.or_expr()?;
            if !self.eat_kw("else") {
                return err("expected 'else' in conditional expression");
            }
            let orelse = self.expr()?;
            return Ok(Expr::IfExp(
                Box::new(cond),
                Box::new(body),
                Box::new(orelse),
            ));
        }
        Ok(body)
    }

    fn or_expr(&mut self) -> Result<Expr, PyError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("or") {
            let rhs = self.and_expr()?;
            lhs = Expr::BoolOp("or", Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, PyError> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("and") {
            let rhs = self.not_expr()?;
            lhs = Expr::BoolOp("and", Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, PyError> {
        if self.eat_kw("not") {
            return Ok(Expr::Not(Box::new(self.not_expr()?)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, PyError> {
        let lhs = self.arith()?;
        for op in ["==", "!=", "<=", ">=", "<", ">"] {
            if matches!(self.peek(), Some(Tok::Op(o)) if *o == op) {
                self.bump();
                let rhs = self.arith()?;
                let op: &'static str = match op {
                    "==" => "==",
                    "!=" => "!=",
                    "<=" => "<=",
                    ">=" => ">=",
                    "<" => "<",
                    _ => ">",
                };
                return Ok(Expr::Compare(op, Box::new(lhs), Box::new(rhs)));
            }
        }
        if self.eat_kw("in") {
            let rhs = self.arith()?;
            return Ok(Expr::Compare("in", Box::new(lhs), Box::new(rhs)));
        }
        if self.eat_kw("not") {
            if !self.eat_kw("in") {
                return err("expected 'in' after 'not' in comparison");
            }
            let rhs = self.arith()?;
            return Ok(Expr::Not(Box::new(Expr::Compare(
                "in",
                Box::new(lhs),
                Box::new(rhs),
            ))));
        }
        Ok(lhs)
    }

    fn arith(&mut self) -> Result<Expr, PyError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Op("+")) => "+",
                Some(Tok::Op("-")) => "-",
                _ => break,
            };
            self.bump();
            let rhs = self.term()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Expr, PyError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Op("*")) => "*",
                Some(Tok::Op("/")) => "/",
                Some(Tok::Op("//")) => "//",
                Some(Tok::Op("%")) => "%",
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, PyError> {
        if self.eat_op("-") {
            return Ok(Expr::Unary("-", Box::new(self.unary()?)));
        }
        if self.eat_op("+") {
            return self.unary();
        }
        self.power()
    }

    fn power(&mut self) -> Result<Expr, PyError> {
        let base = self.postfix()?;
        if matches!(self.peek(), Some(Tok::Op("**"))) {
            self.bump();
            let exp = self.unary()?; // right-associative
            return Ok(Expr::Binary("**", Box::new(base), Box::new(exp)));
        }
        Ok(base)
    }

    fn postfix(&mut self) -> Result<Expr, PyError> {
        let mut e = self.atom()?;
        loop {
            if self.eat_op("(") {
                let mut args = Vec::new();
                if !self.eat_op(")") {
                    loop {
                        args.push(self.expr()?);
                        if self.eat_op(")") {
                            break;
                        }
                        self.expect_op(",")?;
                    }
                }
                e = Expr::Call(Box::new(e), args);
            } else if self.eat_op("[") {
                let idx = self.expr()?;
                self.expect_op("]")?;
                e = Expr::Index(Box::new(e), Box::new(idx));
            } else if self.eat_op(".") {
                match self.bump() {
                    Some(Tok::Name(n)) => e = Expr::Attr(Box::new(e), n),
                    other => return err(format!("expected attribute name, got {other:?}")),
                }
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn atom(&mut self) -> Result<Expr, PyError> {
        match self.bump() {
            Some(Tok::Int(v)) => Ok(Expr::Int(v)),
            Some(Tok::Float(v)) => Ok(Expr::Float(v)),
            Some(Tok::Str(s)) => Ok(Expr::Str(s)),
            Some(Tok::FStr(parts)) => {
                let mut out = Vec::new();
                for p in parts {
                    match p {
                        FPart::Lit(l) => out.push(FStrPart::Lit(l)),
                        FPart::Expr(src) => {
                            out.push(FStrPart::Expr(Box::new(parse_expression(&src)?)))
                        }
                    }
                }
                Ok(Expr::FStr(out))
            }
            Some(Tok::Name(n)) => Ok(Expr::Name(n)),
            Some(Tok::Kw("True")) => Ok(Expr::Bool(true)),
            Some(Tok::Kw("False")) => Ok(Expr::Bool(false)),
            Some(Tok::Kw("None")) => Ok(Expr::NoneLit),
            Some(Tok::Op("(")) => {
                let e = self.expr()?;
                self.expect_op(")")?;
                Ok(e)
            }
            Some(Tok::Op("[")) => {
                let mut items = Vec::new();
                if !self.eat_op("]") {
                    loop {
                        items.push(self.expr()?);
                        if self.eat_op("]") {
                            break;
                        }
                        self.expect_op(",")?;
                        // Trailing comma.
                        if self.eat_op("]") {
                            break;
                        }
                    }
                }
                Ok(Expr::List(items))
            }
            Some(Tok::Op("{")) => {
                let mut items = Vec::new();
                if !self.eat_op("}") {
                    loop {
                        let k = self.expr()?;
                        self.expect_op(":")?;
                        let v = self.expr()?;
                        items.push((k, v));
                        if self.eat_op("}") {
                            break;
                        }
                        self.expect_op(",")?;
                        if self.eat_op("}") {
                            break;
                        }
                    }
                }
                Ok(Expr::Dict(items))
            }
            other => err(format!("unexpected token {other:?}")),
        }
    }
}

fn expr_to_target(e: Expr) -> Result<Target, PyError> {
    match e {
        Expr::Name(n) => Ok(Target::Name(n)),
        Expr::Index(obj, idx) => Ok(Target::Index(obj, idx)),
        other => err(format!("cannot assign to {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_module() {
        let m = parse_module("x = 1\ny = x + 2\n").unwrap();
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn parses_def_with_suite() {
        let m = parse_module("def f(a, b):\n    c = a + b\n    return c\n").unwrap();
        assert!(matches!(&m[0], Stmt::Def(n, p, b) if n == "f" && p.len() == 2 && b.len() == 2));
    }

    #[test]
    fn parses_inline_suite() {
        let m = parse_module("if x: return 1\n").unwrap();
        assert!(matches!(&m[0], Stmt::If(arms, None) if arms.len() == 1));
    }

    #[test]
    fn parses_if_elif_else() {
        let m = parse_module("if a:\n  x = 1\nelif b:\n  x = 2\nelse:\n  x = 3\n").unwrap();
        assert!(matches!(&m[0], Stmt::If(arms, Some(_)) if arms.len() == 2));
    }

    #[test]
    fn parses_index_assignment() {
        let m = parse_module("a[0] = 5").unwrap();
        assert!(matches!(&m[0], Stmt::Assign(Target::Index(..), _)));
    }

    #[test]
    fn parses_conditional_expression() {
        let e = parse_expression("1 if x > 0 else 2").unwrap();
        assert!(matches!(e, Expr::IfExp(..)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_expression("1 +").is_err());
        assert!(parse_module("def f(:\n  pass").is_err());
        assert!(parse_expression("1 2").is_err());
    }

    #[test]
    fn not_in_operator() {
        let e = parse_expression("x not in ys").unwrap();
        assert!(matches!(e, Expr::Not(_)));
    }
}
