//! # pythonish — an embeddable mini-Python interpreter
//!
//! Swift/T calls Python by *embedding the interpreter as a library* rather
//! than exec-ing `python` (Wozniak et al., CLUSTER 2015, §III.C): launching
//! external programs is impossible on Blue Gene/Q and the filesystem
//! overheads are unacceptable at scale. The production system links
//! `libpython`; this reproduction substitutes a from-scratch interpreter
//! for a practical Python subset, which exercises the identical
//! architecture — in-process code-fragment evaluation, value marshaling
//! through strings, and the retain-vs-reinitialize state policy — without
//! the FFI gate (see DESIGN.md §2).
//!
//! Supported subset: integers/floats/strings/bools/None/lists/dicts,
//! arithmetic (`+ - * / // % **`), comparisons, boolean logic, `if`/`elif`/
//! `else`, `while`, `for .. in`, `def` with recursion, `return`/`break`/
//! `continue`, `global`, indexing, method calls (`append`, `split`,
//! `upper`, ...), f-strings, and a `math` module.
//!
//! The Swift/T convention is a two-part leaf call: run a *code* fragment,
//! then evaluate an *expression* whose string form is the task result —
//! [`Python::run`] implements exactly that.
//!
//! ```
//! use pythonish::Python;
//!
//! let mut py = Python::new();
//! let out = py.run("x = 6\ny = 7", "x * y").unwrap();
//! assert_eq!(out, "42");
//! ```

mod interp;
mod lexer;
mod parser;
mod value;

pub use interp::Python;
pub use value::{PyError, Value};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_code_then_expr() {
        let mut py = Python::new();
        assert_eq!(py.run("a = [1, 2, 3]", "sum(a)").unwrap(), "6");
    }

    #[test]
    fn state_retained_between_calls() {
        let mut py = Python::new();
        py.exec("counter = 10").unwrap();
        py.exec("counter = counter + 5").unwrap();
        assert_eq!(py.eval("counter").unwrap().to_display(), "15");
    }

    #[test]
    fn fresh_interpreter_has_no_state() {
        let mut py = Python::new();
        py.exec("leak = 1").unwrap();
        let mut py2 = Python::new();
        assert!(py2.eval("leak").is_err());
    }

    #[test]
    fn fibonacci() {
        let mut py = Python::new();
        let code = r#"
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)
"#;
        assert_eq!(py.run(code, "fib(15)").unwrap(), "610");
    }

    #[test]
    fn string_processing() {
        let mut py = Python::new();
        let code = r#"
words = "the quick brown fox".split()
caps = []
for w in words:
    caps.append(w.upper())
result = ",".join(caps)
"#;
        assert_eq!(py.run(code, "result").unwrap(), "THE,QUICK,BROWN,FOX");
    }
}
