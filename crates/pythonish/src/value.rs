//! Runtime values and errors for the mini-Python.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Error raised during parsing or evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PyError {
    /// Exception-style message (`NameError: ...`, `TypeError: ...`).
    pub message: String,
}

impl PyError {
    pub(crate) fn new(kind: &str, msg: impl std::fmt::Display) -> Self {
        PyError {
            message: format!("{kind}: {msg}"),
        }
    }
}

impl std::fmt::Display for PyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for PyError {}

/// A Python value. Lists and dicts have reference semantics, as in Python.
#[derive(Debug, Clone)]
pub enum Value {
    None,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(Rc<String>),
    List(Rc<RefCell<Vec<Value>>>),
    Dict(Rc<RefCell<BTreeMap<String, Value>>>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(Rc::new(s.into()))
    }

    /// Build a list value.
    pub fn list(items: Vec<Value>) -> Self {
        Value::List(Rc::new(RefCell::new(items)))
    }

    /// Python truthiness.
    pub fn truthy(&self) -> bool {
        match self {
            Value::None => false,
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::List(l) => !l.borrow().is_empty(),
            Value::Dict(d) => !d.borrow().is_empty(),
        }
    }

    /// `str(v)` — what `print` shows and what the leaf-task result is.
    pub fn to_display(&self) -> String {
        match self {
            Value::None => "None".to_string(),
            Value::Bool(b) => if *b { "True" } else { "False" }.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format_float(*f),
            Value::Str(s) => (**s).clone(),
            Value::List(_) | Value::Dict(_) => self.to_repr(),
        }
    }

    /// `repr(v)` — strings get quotes, containers recurse.
    pub fn to_repr(&self) -> String {
        match self {
            Value::Str(s) => format!("'{}'", s.replace('\\', "\\\\").replace('\'', "\\'")),
            Value::List(l) => {
                let items: Vec<String> = l.borrow().iter().map(|v| v.to_repr()).collect();
                format!("[{}]", items.join(", "))
            }
            Value::Dict(d) => {
                let items: Vec<String> = d
                    .borrow()
                    .iter()
                    .map(|(k, v)| format!("'{k}': {}", v.to_repr()))
                    .collect();
                format!("{{{}}}", items.join(", "))
            }
            other => other.to_display(),
        }
    }

    /// Python type name (for error messages).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::None => "NoneType",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::List(_) => "list",
            Value::Dict(_) => "dict",
        }
    }

    /// Structural equality (`==`).
    pub fn py_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::None, Value::None) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::List(a), Value::List(b)) => {
                let (a, b) = (a.borrow(), b.borrow());
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.py_eq(y))
            }
            (Value::Dict(a), Value::Dict(b)) => {
                let (a, b) = (a.borrow(), b.borrow());
                a.len() == b.len()
                    && a.iter()
                        .all(|(k, v)| b.get(k).map(|w| v.py_eq(w)).unwrap_or(false))
            }
            // Numeric cross-type equality (bool counts as int, like Python).
            (a, b) => match (a.as_number(), b.as_number()) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            },
        }
    }

    /// Numeric view for arithmetic (bools are 0/1, like Python).
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(*b as i64 as f64),
            _ => None,
        }
    }

    /// Integer view when exactly representable.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }
}

/// Python float formatting: `str(2.0)` is `"2.0"`.
pub fn format_float(f: f64) -> String {
    if f.is_nan() {
        return "nan".to_string();
    }
    if f.is_infinite() {
        return if f > 0.0 { "inf" } else { "-inf" }.to_string();
    }
    let s = format!("{f}");
    if s.contains('.') || s.contains('e') {
        s
    } else {
        format!("{s}.0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::None.truthy());
        assert!(!Value::Int(0).truthy());
        assert!(Value::Int(-1).truthy());
        assert!(!Value::str("").truthy());
        assert!(Value::str("x").truthy());
        assert!(!Value::list(vec![]).truthy());
    }

    #[test]
    fn display_and_repr() {
        assert_eq!(Value::Float(2.0).to_display(), "2.0");
        assert_eq!(Value::str("hi").to_display(), "hi");
        assert_eq!(Value::str("hi").to_repr(), "'hi'");
        let l = Value::list(vec![Value::Int(1), Value::str("a")]);
        assert_eq!(l.to_display(), "[1, 'a']");
    }

    #[test]
    fn equality_across_numeric_types() {
        assert!(Value::Int(2).py_eq(&Value::Float(2.0)));
        assert!(Value::Bool(true).py_eq(&Value::Int(1)));
        assert!(!Value::str("2").py_eq(&Value::Int(2)));
    }

    #[test]
    fn list_reference_semantics() {
        let a = Value::list(vec![Value::Int(1)]);
        let b = a.clone();
        if let Value::List(l) = &a {
            l.borrow_mut().push(Value::Int(2));
        }
        assert_eq!(b.to_display(), "[1, 2]");
    }
}
