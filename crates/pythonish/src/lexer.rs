//! Tokenizer with Python's indentation-based block structure.

use crate::value::PyError;

#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // Structure
    Newline,
    Indent,
    Dedent,
    // Literals / names
    Int(i64),
    Float(f64),
    Str(String),
    FStr(Vec<FPart>),
    Name(String),
    // Keywords
    Kw(&'static str),
    // Punctuation / operators
    Op(&'static str),
}

/// A piece of an f-string: literal text or an embedded expression source.
#[derive(Debug, Clone, PartialEq)]
pub enum FPart {
    Lit(String),
    Expr(String),
}

const KEYWORDS: &[&str] = &[
    "if", "elif", "else", "while", "for", "in", "def", "return", "break", "continue", "pass",
    "and", "or", "not", "True", "False", "None", "global", "import", "del", "lambda",
];

const OPS2PLUS: &[&str] = &[
    "**", "//", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%=",
];
const OPS1: &[&str] = &[
    "+", "-", "*", "/", "%", "(", ")", "[", "]", "{", "}", ",", ":", ".", "=", "<", ">",
];

pub fn tokenize(src: &str) -> Result<Vec<Tok>, PyError> {
    let mut toks = Vec::new();
    let mut indents: Vec<usize> = vec![0];
    // Bracket depth: newlines and indentation are ignored inside brackets.
    let mut bracket_depth = 0usize;

    for raw_line in src.lines() {
        // Measure indentation (spaces only; tabs count as 8).
        let mut indent = 0usize;
        let mut rest = raw_line;
        loop {
            if let Some(r) = rest.strip_prefix(' ') {
                indent += 1;
                rest = r;
            } else if let Some(r) = rest.strip_prefix('\t') {
                indent += 8;
                rest = r;
            } else {
                break;
            }
        }
        let trimmed = rest.trim_end();
        if bracket_depth == 0 {
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            // Emit INDENT/DEDENT.
            let cur = *indents.last().unwrap();
            if indent > cur {
                indents.push(indent);
                toks.push(Tok::Indent);
            } else if indent < cur {
                while *indents.last().unwrap() > indent {
                    indents.pop();
                    toks.push(Tok::Dedent);
                }
                if *indents.last().unwrap() != indent {
                    return Err(PyError::new("IndentationError", "unindent does not match"));
                }
            }
        }
        tokenize_line(trimmed, &mut toks, &mut bracket_depth)?;
        if bracket_depth == 0 {
            toks.push(Tok::Newline);
        }
    }
    if bracket_depth != 0 {
        return Err(PyError::new("SyntaxError", "unclosed bracket"));
    }
    while indents.len() > 1 {
        indents.pop();
        toks.push(Tok::Dedent);
    }
    Ok(toks)
}

fn tokenize_line(
    line: &str,
    toks: &mut Vec<Tok>,
    bracket_depth: &mut usize,
) -> Result<(), PyError> {
    let b = line.as_bytes();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' => i += 1,
            b'#' => break,
            b'0'..=b'9' => {
                let start = i;
                let mut is_float = false;
                while i < b.len()
                    && (b[i].is_ascii_digit()
                        || b[i] == b'.'
                        || b[i] == b'e'
                        || b[i] == b'E'
                        || ((b[i] == b'+' || b[i] == b'-')
                            && i > start
                            && (b[i - 1] == b'e' || b[i - 1] == b'E')))
                {
                    if b[i] == b'.' || b[i] == b'e' || b[i] == b'E' {
                        is_float = true;
                    }
                    i += 1;
                }
                let text = &line[start..i];
                if is_float {
                    toks.push(Tok::Float(text.parse().map_err(|_| {
                        PyError::new("SyntaxError", format!("bad float literal {text}"))
                    })?));
                } else {
                    toks.push(Tok::Int(text.parse().map_err(|_| {
                        PyError::new("SyntaxError", format!("bad int literal {text}"))
                    })?));
                }
            }
            b'"' | b'\'' => {
                let (s, ni) = lex_string(line, i)?;
                toks.push(Tok::Str(s));
                i = ni;
            }
            b'f' if i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'\'') => {
                let (s, ni) = lex_string(line, i + 1)?;
                toks.push(Tok::FStr(split_fstring(&s)?));
                i = ni;
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let word = &line[start..i];
                if let Some(kw) = KEYWORDS.iter().find(|k| **k == word) {
                    toks.push(Tok::Kw(kw));
                } else {
                    toks.push(Tok::Name(word.to_string()));
                }
            }
            _ => {
                // Byte-wise operator matching: string slicing here could
                // split a multibyte character and panic.
                let rest = &b[i..];
                if let Some(op) = OPS2PLUS.iter().find(|o| rest.starts_with(o.as_bytes())) {
                    toks.push(Tok::Op(op));
                    i += 2;
                } else if let Some(op) = OPS1.iter().find(|o| rest.starts_with(o.as_bytes())) {
                    match *op {
                        "(" | "[" | "{" => *bracket_depth += 1,
                        ")" | "]" | "}" => *bracket_depth = bracket_depth.saturating_sub(1),
                        _ => {}
                    }
                    toks.push(Tok::Op(op));
                    i += 1;
                } else {
                    // `i` sits on a character boundary (all prior arms
                    // consume whole characters), so this decode is safe.
                    let ch = line[i..].chars().next().unwrap_or('?');
                    return Err(PyError::new(
                        "SyntaxError",
                        format!("unexpected character {ch:?}"),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Lex a quoted string starting at `i` (which points at the quote).
fn lex_string(line: &str, i: usize) -> Result<(String, usize), PyError> {
    let b = line.as_bytes();
    let quote = b[i];
    let mut s = String::new();
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            q if q == quote => return Ok((s, j + 1)),
            b'\\' if j + 1 < b.len() => {
                if b[j + 1].is_ascii() {
                    s.push(match b[j + 1] {
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        b'\\' => '\\',
                        b'\'' => '\'',
                        b'"' => '"',
                        b'0' => '\0',
                        other => other as char,
                    });
                    j += 2;
                } else {
                    // Backslash before a multibyte char: keep the char.
                    let c = line[j + 1..].chars().next().unwrap();
                    s.push(c);
                    j += 1 + c.len_utf8();
                }
            }
            _ => {
                let c = line[j..].chars().next().unwrap();
                s.push(c);
                j += c.len_utf8();
            }
        }
    }
    Err(PyError::new("SyntaxError", "unterminated string literal"))
}

/// Split f-string content into literal and `{expr}` parts.
fn split_fstring(s: &str) -> Result<Vec<crate::lexer::FPart>, PyError> {
    let mut parts = Vec::new();
    let mut lit = String::new();
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '{' if chars.peek() == Some(&'{') => {
                chars.next();
                lit.push('{');
            }
            '}' if chars.peek() == Some(&'}') => {
                chars.next();
                lit.push('}');
            }
            '{' => {
                if !lit.is_empty() {
                    parts.push(FPart::Lit(std::mem::take(&mut lit)));
                }
                let mut expr = String::new();
                let mut depth = 1;
                for e in chars.by_ref() {
                    match e {
                        '{' => depth += 1,
                        '}' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    expr.push(e);
                }
                if depth != 0 {
                    return Err(PyError::new("SyntaxError", "unterminated { in f-string"));
                }
                parts.push(FPart::Expr(expr));
            }
            '}' => return Err(PyError::new("SyntaxError", "single '}' in f-string")),
            _ => lit.push(c),
        }
    }
    if !lit.is_empty() {
        parts.push(FPart::Lit(lit));
    }
    Ok(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_assignment() {
        let t = tokenize("x = 1").unwrap();
        assert_eq!(
            t,
            vec![
                Tok::Name("x".into()),
                Tok::Op("="),
                Tok::Int(1),
                Tok::Newline
            ]
        );
    }

    #[test]
    fn indentation_blocks() {
        let t = tokenize("if x:\n    y = 1\nz = 2").unwrap();
        assert!(t.contains(&Tok::Indent));
        assert!(t.contains(&Tok::Dedent));
    }

    #[test]
    fn nested_dedents() {
        let t = tokenize("if a:\n    if b:\n        c = 1\nd = 2").unwrap();
        let dedents = t.iter().filter(|t| **t == Tok::Dedent).count();
        assert_eq!(dedents, 2);
    }

    #[test]
    fn brackets_span_lines() {
        let t = tokenize("x = [1,\n     2,\n     3]").unwrap();
        let newlines = t.iter().filter(|t| **t == Tok::Newline).count();
        assert_eq!(newlines, 1);
    }

    #[test]
    fn string_escapes() {
        let t = tokenize(r#"s = "a\nb""#).unwrap();
        assert!(matches!(&t[2], Tok::Str(s) if s == "a\nb"));
    }

    #[test]
    fn fstring_parts() {
        let t = tokenize(r#"s = f"n={n}!""#).unwrap();
        match &t[2] {
            Tok::FStr(parts) => {
                assert_eq!(parts.len(), 3);
                assert_eq!(parts[0], FPart::Lit("n=".into()));
                assert_eq!(parts[1], FPart::Expr("n".into()));
                assert_eq!(parts[2], FPart::Lit("!".into()));
            }
            other => panic!("expected fstring, got {other:?}"),
        }
    }

    #[test]
    fn comments_ignored() {
        let t = tokenize("x = 1  # set x\n# whole line\ny = 2").unwrap();
        let names = t.iter().filter(|t| matches!(t, Tok::Name(_))).count();
        assert_eq!(names, 2);
    }

    #[test]
    fn bad_indent_errors() {
        assert!(tokenize("if x:\n    y = 1\n  z = 2").is_err());
    }

    #[test]
    fn float_and_scientific() {
        let t = tokenize("x = 2.5e3").unwrap();
        assert!(matches!(t[2], Tok::Float(f) if f == 2500.0));
    }
}
