//! Mini-Python must return `PyError`, never panic, on arbitrary code.

use proptest::prelude::*;
use pythonish::Python;

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn exec_never_panics_on_arbitrary_input(src in ".{0,160}") {
        let mut py = Python::new();
        let _ = py.exec(&src);
    }

    #[test]
    fn exec_never_panics_on_pythonic_soup(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("def"), Just("f"), Just("("), Just(")"), Just(":"),
                Just("return"), Just("if"), Just("else"), Just("for"),
                Just("in"), Just("range"), Just("x"), Just("="), Just("1"),
                Just("+"), Just("["), Just("]"), Just("{"), Just("}"),
                Just("'s'"), Just("f'{x}'"), Just("\n"), Just("\n    "),
                Just("."), Just(","), Just("*"),
            ],
            0..30,
        )
    ) {
        let src: String = tokens.join(" ");
        let mut py = Python::new();
        let _ = py.exec(&src);
    }
}
