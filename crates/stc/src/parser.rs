//! Recursive-descent parser for the Swift subset.

use crate::ast::*;
use crate::lexer::{tokenize, Spanned, Tok};

/// Parse error with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub line: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

pub fn parse(src: &str) -> Result<Program, ParseError> {
    let toks = tokenize(src).map_err(|e| ParseError {
        message: e.message,
        line: e.line,
    })?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos.min(self.toks.len() - 1)].tok
    }
    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }
    fn line(&self) -> usize {
        self.toks[self.pos.min(self.toks.len() - 1)].line
    }
    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].tok.clone();
        if self.pos < self.toks.len() {
            self.pos += 1;
        }
        t
    }
    fn err<T>(&self, msg: impl std::fmt::Display) -> Result<T, ParseError> {
        Err(ParseError {
            message: msg.to_string(),
            line: self.line(),
        })
    }
    fn eat_op(&mut self, op: &str) -> bool {
        if matches!(self.peek(), Tok::Op(o) if *o == op) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
    fn expect_op(&mut self, op: &str) -> Result<(), ParseError> {
        if self.eat_op(op) {
            Ok(())
        } else {
            self.err(format!("expected '{op}', found {:?}", self.peek()))
        }
    }
    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Kw(k) if *k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Ident(n) => Ok(n),
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn peek_type(&self) -> bool {
        matches!(
            self.peek(),
            Tok::Kw("int")
                | Tok::Kw("float")
                | Tok::Kw("string")
                | Tok::Kw("boolean")
                | Tok::Kw("void")
                | Tok::Kw("blob")
        )
    }

    fn ty(&mut self) -> Result<Type, ParseError> {
        let base = match self.bump() {
            Tok::Kw("int") => Type::Int,
            Tok::Kw("float") => Type::Float,
            Tok::Kw("string") => Type::Str,
            Tok::Kw("boolean") => Type::Bool,
            Tok::Kw("void") => Type::Void,
            Tok::Kw("blob") => Type::Blob,
            other => return self.err(format!("expected a type, found {other:?}")),
        };
        if self.eat_op("[") {
            self.expect_op("]")?;
            return Ok(Type::Array(Box::new(base)));
        }
        Ok(base)
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut prog = Program::default();
        loop {
            match self.peek() {
                Tok::Eof => break,
                // Function definition starts with "(" (output list).
                Tok::Op("(") => {
                    prog.functions.push(self.func_def()?);
                }
                Tok::Kw("main") if matches!(self.peek2(), Tok::Op("{")) => {
                    self.bump();
                    self.expect_op("{")?;
                    while !self.eat_op("}") {
                        let s = self.stmt()?;
                        prog.main.push(s);
                    }
                }
                _ => {
                    let s = self.stmt()?;
                    prog.main.push(s);
                }
            }
        }
        Ok(prog)
    }

    fn param_list(&mut self) -> Result<Vec<Param>, ParseError> {
        self.expect_op("(")?;
        let mut params = Vec::new();
        if self.eat_op(")") {
            return Ok(params);
        }
        loop {
            let mut ty = self.ty()?;
            let name = self.ident()?;
            // Array brackets may follow the name: `int a[]`.
            if self.eat_op("[") {
                self.expect_op("]")?;
                ty = Type::Array(Box::new(ty));
            }
            params.push(Param { ty, name });
            if self.eat_op(")") {
                break;
            }
            self.expect_op(",")?;
        }
        Ok(params)
    }

    fn func_def(&mut self) -> Result<FuncDef, ParseError> {
        let line = self.line();
        let outputs = self.param_list()?;
        let name = self.ident()?;
        let inputs = self.param_list()?;
        // Composite body or Tcl leaf.
        if matches!(self.peek(), Tok::Op("{")) {
            self.bump();
            let mut body = Vec::new();
            while !self.eat_op("}") {
                body.push(self.stmt()?);
            }
            return Ok(FuncDef {
                name,
                outputs,
                inputs,
                body: FuncBody::Composite(body),
                line,
            });
        }
        // Leaf: optional "pkg" "version", then [ "template" ];
        let mut package = None;
        if let Tok::Str(_) = self.peek() {
            let pkg = match self.bump() {
                Tok::Str(s) => s,
                _ => unreachable!(),
            };
            let version = match self.bump() {
                Tok::Str(s) => s,
                other => {
                    return self.err(format!("expected package version string, found {other:?}"))
                }
            };
            package = Some((pkg, version));
        }
        self.expect_op("[")?;
        let template = match self.bump() {
            Tok::Str(s) => s,
            other => return self.err(format!("expected Tcl template string, found {other:?}")),
        };
        self.expect_op("]")?;
        self.expect_op(";")?;
        Ok(FuncDef {
            name,
            outputs,
            inputs,
            body: FuncBody::TclLeaf { package, template },
            line,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_op("{")?;
        let mut body = Vec::new();
        while !self.eat_op("}") {
            body.push(self.stmt()?);
        }
        Ok(body)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        if self.peek_type() {
            let mut ty = self.ty()?;
            let name = self.ident()?;
            // Swift also allows the array brackets after the name:
            // `int A[];`.
            if self.eat_op("[") {
                self.expect_op("]")?;
                ty = Type::Array(Box::new(ty));
            }
            let init = if self.eat_op("=") {
                Some(self.expr()?)
            } else {
                None
            };
            self.expect_op(";")?;
            return Ok(Stmt::Decl {
                ty,
                name,
                init,
                line,
            });
        }
        if self.eat_kw("foreach") {
            let value_var = self.ident()?;
            let index_var = if self.eat_op(",") {
                Some(self.ident()?)
            } else {
                None
            };
            if !self.eat_kw("in") {
                return self.err("expected 'in' in foreach");
            }
            let iterable = self.iterable()?;
            let body = self.block()?;
            return Ok(Stmt::Foreach {
                value_var,
                index_var,
                iterable,
                body,
                line,
            });
        }
        if self.eat_kw("if") {
            self.expect_op("(")?;
            let cond = self.expr()?;
            self.expect_op(")")?;
            let then_branch = self.block()?;
            let else_branch = if self.eat_kw("else") {
                if matches!(self.peek(), Tok::Kw("if")) {
                    vec![self.stmt()?]
                } else {
                    self.block()?
                }
            } else {
                Vec::new()
            };
            return Ok(Stmt::If {
                cond,
                then_branch,
                else_branch,
                line,
            });
        }
        // Assignment, multi-assignment, or call statement.
        let name = self.ident()?;
        if self.eat_op(",") {
            // a, b, ... = f(args);
            let mut targets = vec![name];
            loop {
                targets.push(self.ident()?);
                if !self.eat_op(",") {
                    break;
                }
            }
            self.expect_op("=")?;
            let fname = self.ident()?;
            let call = self.call_expr(fname, line)?;
            self.expect_op(";")?;
            return Ok(Stmt::MultiAssign {
                targets,
                call,
                line,
            });
        }
        if self.eat_op("[") {
            let idx = self.expr()?;
            self.expect_op("]")?;
            self.expect_op("=")?;
            let value = self.expr()?;
            self.expect_op(";")?;
            return Ok(Stmt::Assign {
                target: LValue::Index(name, idx),
                value,
                line,
            });
        }
        if self.eat_op("=") {
            let value = self.expr()?;
            self.expect_op(";")?;
            return Ok(Stmt::Assign {
                target: LValue::Var(name),
                value,
                line,
            });
        }
        if matches!(self.peek(), Tok::Op("(")) {
            let call = self.call_expr(name, line)?;
            self.expect_op(";")?;
            return Ok(Stmt::Call { call, line });
        }
        self.err(format!(
            "expected statement, found '{name}' then {:?}",
            self.peek()
        ))
    }

    fn iterable(&mut self) -> Result<Iterable, ParseError> {
        if self.eat_op("[") {
            let start = self.expr()?;
            self.expect_op(":")?;
            let end = self.expr()?;
            let step = if self.eat_op(":") {
                Some(self.expr()?)
            } else {
                None
            };
            self.expect_op("]")?;
            return Ok(Iterable::Range(start, end, step));
        }
        Ok(Iterable::Array(self.expr()?))
    }

    fn call_expr(&mut self, name: String, line: usize) -> Result<CallExpr, ParseError> {
        self.expect_op("(")?;
        let mut args = Vec::new();
        if !self.eat_op(")") {
            loop {
                args.push(self.expr()?);
                if self.eat_op(")") {
                    break;
                }
                self.expect_op(",")?;
            }
        }
        Ok(CallExpr { name, args, line })
    }

    // Expression precedence: || < && < cmp < add < mul < pow < unary < postfix.
    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while matches!(self.peek(), Tok::Op("||")) {
            let line = self.line();
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Binary("||", Box::new(lhs), Box::new(rhs), line);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while matches!(self.peek(), Tok::Op("&&")) {
            let line = self.line();
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary("&&", Box::new(lhs), Box::new(rhs), line);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        for op in ["==", "!=", "<=", ">=", "<", ">"] {
            if matches!(self.peek(), Tok::Op(o) if *o == op) {
                let line = self.line();
                self.bump();
                let rhs = self.add_expr()?;
                let op: &'static str = ["==", "!=", "<=", ">=", "<", ">"]
                    .iter()
                    .find(|o| **o == op)
                    .unwrap();
                return Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs), line));
            }
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Op("+") => "+",
                Tok::Op("-") => "-",
                _ => break,
            };
            let line = self.line();
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), line);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.pow_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Op("*") => "*",
                Tok::Op("/") => "/",
                Tok::Op("%") => "%",
                _ => break,
            };
            let line = self.line();
            self.bump();
            let rhs = self.pow_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), line);
        }
        Ok(lhs)
    }

    fn pow_expr(&mut self) -> Result<Expr, ParseError> {
        let base = self.unary_expr()?;
        if matches!(self.peek(), Tok::Op("**")) {
            let line = self.line();
            self.bump();
            let exp = self.pow_expr()?; // right-assoc
            return Ok(Expr::Binary("**", Box::new(base), Box::new(exp), line));
        }
        Ok(base)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if matches!(self.peek(), Tok::Op("-")) {
            let line = self.line();
            self.bump();
            return Ok(Expr::Unary("-", Box::new(self.unary_expr()?), line));
        }
        if matches!(self.peek(), Tok::Op("!")) {
            let line = self.line();
            self.bump();
            return Ok(Expr::Unary("!", Box::new(self.unary_expr()?), line));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        match self.bump() {
            Tok::Int(v) => Ok(Expr::IntLit(v)),
            Tok::Float(v) => Ok(Expr::FloatLit(v)),
            Tok::Str(s) => Ok(Expr::StrLit(s)),
            Tok::Kw("true") => Ok(Expr::BoolLit(true)),
            Tok::Kw("false") => Ok(Expr::BoolLit(false)),
            Tok::Op("(") => {
                let e = self.expr()?;
                self.expect_op(")")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if matches!(self.peek(), Tok::Op("(")) {
                    Ok(Expr::Call(self.call_expr(name, line)?))
                } else if self.eat_op("[") {
                    let idx = self.expr()?;
                    self.expect_op("]")?;
                    Ok(Expr::Index(name, Box::new(idx), line))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(ParseError {
                message: format!("expected expression, found {other:?}"),
                line,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declarations_and_expressions() {
        let p = parse("int x = 1 + 2 * 3;\nfloat y;\ny = 2.5;").unwrap();
        assert_eq!(p.main.len(), 3);
        match &p.main[0] {
            Stmt::Decl { ty, name, init, .. } => {
                assert_eq!(*ty, Type::Int);
                assert_eq!(name, "x");
                assert!(matches!(init, Some(Expr::Binary("+", ..))));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse("int x = 1 + 2 * 3;").unwrap();
        match &p.main[0] {
            Stmt::Decl {
                init: Some(Expr::Binary("+", _, rhs, _)),
                ..
            } => assert!(matches!(**rhs, Expr::Binary("*", ..))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn composite_function() {
        let p = parse("(int o) f (int a, int b) { o = a + b; }").unwrap();
        assert_eq!(p.functions.len(), 1);
        let f = &p.functions[0];
        assert_eq!(f.name, "f");
        assert_eq!(f.outputs.len(), 1);
        assert_eq!(f.inputs.len(), 2);
        assert!(matches!(f.body, FuncBody::Composite(_)));
    }

    #[test]
    fn tcl_leaf_function() {
        let p = parse(r#"(int o) f (int i) "pkg" "1.0" [ "set <<o>> <<i>>" ];"#).unwrap();
        match &p.functions[0].body {
            FuncBody::TclLeaf { package, template } => {
                assert_eq!(package.as_ref().unwrap().0, "pkg");
                assert!(template.contains("<<o>>"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tcl_leaf_without_package() {
        let p = parse(r#"(int o) f (int i) [ "set <<o>> <<i>>" ];"#).unwrap();
        match &p.functions[0].body {
            FuncBody::TclLeaf { package, .. } => assert!(package.is_none()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn foreach_range_and_array() {
        let p = parse("foreach i in [0:9] { trace(i); }\nint A[]; foreach v, k in A { trace(v); }")
            .unwrap();
        assert!(matches!(
            &p.main[0],
            Stmt::Foreach {
                iterable: Iterable::Range(..),
                index_var: None,
                ..
            }
        ));
        assert!(matches!(
            &p.main[2],
            Stmt::Foreach {
                iterable: Iterable::Array(_),
                index_var: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn array_decl_and_index() {
        let p = parse("int A[];\nA[0] = 5;\nint x = A[0] + 1;").unwrap();
        assert!(matches!(
            &p.main[0],
            Stmt::Decl {
                ty: Type::Array(_),
                ..
            }
        ));
        assert!(matches!(
            &p.main[1],
            Stmt::Assign {
                target: LValue::Index(..),
                ..
            }
        ));
    }

    #[test]
    fn if_else_chain() {
        let p = parse("if (x) { trace(1); } else if (y) { trace(2); } else { trace(3); }");
        // x,y undefined is a semantic error, not a parse error.
        assert!(p.is_ok());
    }

    #[test]
    fn main_block_sugar() {
        let p = parse("main { int x = 1; }").unwrap();
        assert_eq!(p.main.len(), 1);
    }

    #[test]
    fn errors_carry_lines() {
        let err = parse("int x = ;\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = parse("int x = 1;\nint y = @;\n").unwrap_err();
        assert_eq!(err.line, 2);
    }
}
