//! # stc — the Swift-to-Turbine compiler
//!
//! STC translates user Swift code into *Turbine code*: Tcl that drives the
//! `turbine::*` runtime (Wozniak et al., CLUSTER 2015, §III.A). Tcl was
//! chosen deliberately — "a straightforward way to ship code fragments
//! through ADLB for load balancing and evaluation elsewhere, a textual,
//! easily readable format, and a runtime that did not require the user to
//! run the C compiler".
//!
//! The supported Swift subset covers the paper's examples and the
//! experiments:
//!
//! * types `int`, `float`, `string`, `boolean`, `void`, `blob`, arrays
//!   `T[]`;
//! * implicit dataflow: declarations create futures, statement order is
//!   irrelevant, `foreach` iterations and independent calls run
//!   concurrently (§II.A, Fig. 1);
//! * `foreach v, i in [a:b]` range loops (distributed via loop splitting)
//!   and `foreach v, i in array` loops;
//! * `if`/`else` on futures;
//! * composite functions, and **leaf functions defined by inline Tcl
//!   templates** with `<<var>>` placeholders — the paper's §III.A feature:
//!
//! ```text
//! (int o) f (int i, int j) "my_package" "1.0" [
//!     "set <<o>> [ my_package::f <<i>> <<j>> ]"
//! ];
//! ```
//!
//! * builtins: `printf`, `trace`, `assert`, `strcat`, `strlen`, `toint`,
//!   `fromint`, `tofloat`, `fromfloat`, `itof`, `ftoi`, float math
//!   (`sqrt`, `exp`, `log`, `sin`, `cos`), `size`, and the interlanguage
//!   leaves `python(code, expr)`, `r(code, expr)`, `sh(cmd)`.
//!
//! Compilation produces a [`CompiledProgram`]: a *preamble* (proc
//! definitions, loaded by every engine and worker) and a *main* body
//! (evaluated on engine 0). Both are plain Tcl strings — inspect them with
//! [`CompiledProgram::listing`].
//!
//! ```
//! let program = stc::compile(r#"
//!     int x = 6;
//!     int y = x * 7;
//!     printf("answer: %d", y);
//! "#).unwrap();
//! assert!(program.main.contains("swt:ibinop *"));
//! ```

mod ast;
mod codegen;
mod lexer;
mod parser;

pub use ast::Type;
pub use codegen::{compile, CompileError, CompiledProgram};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_program_compiles() {
        let p = compile("printf(\"hi\");").unwrap();
        assert!(p.main.contains("swt:printf"));
    }

    #[test]
    fn undefined_variable_is_an_error() {
        let err = compile("int y = x + 1;").unwrap_err();
        assert!(
            err.message.contains("undefined variable"),
            "{}",
            err.message
        );
    }

    #[test]
    fn type_mismatch_is_an_error() {
        let err = compile("string s = \"a\"; int x = s + 1;").unwrap_err();
        assert!(err.message.contains("type"), "{}", err.message);
    }

    #[test]
    fn leaf_template_substitution() {
        let p = compile(
            r#"
            (int o) twice (int i) "mypkg" "1.0" [
                "set <<o>> [ expr {2 * <<i>>} ]"
            ];
            int r = twice(4);
            trace(r);
        "#,
        )
        .unwrap();
        assert!(p.preamble.contains("package require mypkg"));
        assert!(p.preamble.contains("set o [ expr {2 * $i} ]"));
    }
}
