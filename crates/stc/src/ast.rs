//! AST for the Swift subset.

/// Swift data types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    Int,
    Float,
    Str,
    Bool,
    Void,
    Blob,
    /// `T[]`
    Array(Box<Type>),
}

impl Type {
    /// The Turbine scalar type name used in generated code.
    pub fn turbine_name(&self) -> &'static str {
        match self {
            Type::Int | Type::Bool => "integer",
            Type::Float => "float",
            Type::Str => "string",
            Type::Void => "void",
            Type::Blob => "blob",
            Type::Array(_) => "container",
        }
    }

    /// Display form matching Swift syntax.
    pub fn swift_name(&self) -> String {
        match self {
            Type::Int => "int".into(),
            Type::Float => "float".into(),
            Type::Str => "string".into(),
            Type::Bool => "boolean".into(),
            Type::Void => "void".into(),
            Type::Blob => "blob".into(),
            Type::Array(e) => format!("{}[]", e.swift_name()),
        }
    }
}

/// A typed parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    pub ty: Type,
    pub name: String,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    pub name: String,
    pub outputs: Vec<Param>,
    pub inputs: Vec<Param>,
    pub body: FuncBody,
    pub line: usize,
}

/// Function body: Swift statements, or an inline Tcl leaf template
/// (§III.A).
#[derive(Debug, Clone, PartialEq)]
pub enum FuncBody {
    Composite(Vec<Stmt>),
    TclLeaf {
        /// `package require` target, if given.
        package: Option<(String, String)>,
        /// Template with `<<name>>` placeholders.
        template: String,
    },
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `type name = expr?;` (one per declared name).
    Decl {
        ty: Type,
        name: String,
        init: Option<Expr>,
        line: usize,
    },
    /// `lvalue = expr;`
    Assign {
        target: LValue,
        value: Expr,
        line: usize,
    },
    /// Bare call statement (void function or ignored outputs).
    Call { call: CallExpr, line: usize },
    /// `a, b = f(x);` — multi-output call.
    MultiAssign {
        targets: Vec<String>,
        call: CallExpr,
        line: usize,
    },
    /// `foreach v, i in <iterable> { ... }`
    Foreach {
        value_var: String,
        index_var: Option<String>,
        iterable: Iterable,
        body: Vec<Stmt>,
        line: usize,
    },
    /// `if (cond) { ... } else { ... }`
    If {
        cond: Expr,
        then_branch: Vec<Stmt>,
        else_branch: Vec<Stmt>,
        line: usize,
    },
}

/// Assignment target.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    Var(String),
    /// `a[i]`
    Index(String, Expr),
}

/// What a foreach iterates.
#[derive(Debug, Clone, PartialEq)]
pub enum Iterable {
    /// `[start:end]` or `[start:end:step]`
    Range(Expr, Expr, Option<Expr>),
    /// An array-typed expression (currently: a variable).
    Array(Expr),
}

/// A function call.
#[derive(Debug, Clone, PartialEq)]
pub struct CallExpr {
    pub name: String,
    pub args: Vec<Expr>,
    pub line: usize,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    IntLit(i64),
    FloatLit(f64),
    StrLit(String),
    BoolLit(bool),
    Var(String),
    /// `a[i]`
    Index(String, Box<Expr>, usize),
    Call(CallExpr),
    Unary(&'static str, Box<Expr>, usize),
    Binary(&'static str, Box<Expr>, Box<Expr>, usize),
}

impl Expr {
    /// Source line, best effort.
    pub fn line(&self) -> usize {
        match self {
            Expr::Index(_, _, l) | Expr::Unary(_, _, l) | Expr::Binary(_, _, _, l) => *l,
            Expr::Call(c) => c.line,
            _ => 0,
        }
    }
}

/// A whole program: functions plus main statements.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    pub functions: Vec<FuncDef>,
    pub main: Vec<Stmt>,
}
