//! Code generation: Swift AST → Turbine code (Tcl).
//!
//! Every Swift variable becomes a Turbine datum (future) whose id lives in
//! a generated Tcl variable. Expressions compile to *rules*: the Tcl we
//! emit never waits — it only tells the engine what to run when inputs
//! close. `foreach` bodies and `if` branches become generated procs in the
//! preamble (so any engine can run them) that receive the captured datum
//! ids as arguments; loops are split into distributable control tasks.
//! Container writes reserve writer slots so an array closes exactly when
//! its last (possibly remote) writer finishes — Swift/T's slot counting.

use std::collections::HashMap;

use crate::ast::*;
use crate::parser;

/// Compilation failure with source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Explanation, Swift-level.
    pub message: String,
    /// 1-based source line (0 when unknown).
    pub line: usize,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stc: line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CompileError {}

/// The compiler output: Turbine code, ready for `turbine::run_rank`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompiledProgram {
    /// Proc definitions (user functions, loop bodies, branches); loaded on
    /// every engine and worker.
    pub preamble: String,
    /// The main body; evaluated on engine 0.
    pub main: String,
}

impl CompiledProgram {
    /// A readable combined listing, for debugging and docs.
    pub fn listing(&self) -> String {
        format!(
            "# ---- preamble ----\n{}\n# ---- main ----\n{}",
            self.preamble, self.main
        )
    }
}

/// Compile Swift source to Turbine code.
pub fn compile(src: &str) -> Result<CompiledProgram, CompileError> {
    let prog = parser::parse(src).map_err(|e| CompileError {
        message: e.message,
        line: e.line,
    })?;
    let mut cg = Codegen::new();
    cg.collect_signatures(&prog)?;
    for f in &prog.functions {
        cg.emit_function(f)?;
    }
    let mut scope = Scope::new();
    let mut out = String::new();
    cg.emit_block(&prog.main, &mut scope, &mut out)?;
    cg.close_scope_containers(&scope, &mut out);
    Ok(CompiledProgram {
        preamble: cg.preamble,
        main: out,
    })
}

#[derive(Debug, Clone)]
struct VarInfo {
    ty: Type,
    /// Tcl variable holding the datum id.
    tcl: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FuncKind {
    Composite,
    TclLeaf,
}

#[derive(Debug, Clone)]
struct FuncSig {
    outputs: Vec<Type>,
    inputs: Vec<Type>,
    /// Recorded for diagnostics and future call-site specialization.
    #[allow(dead_code)]
    kind: FuncKind,
}

struct Scope {
    /// Innermost last. Each frame: name → info.
    frames: Vec<HashMap<String, VarInfo>>,
    /// Containers declared in the *current top frame* (closed at scope
    /// end), in declaration order.
    owned_containers: Vec<String>,
}

impl Scope {
    fn new() -> Self {
        Scope {
            frames: vec![HashMap::new()],
            owned_containers: Vec::new(),
        }
    }

    fn declare(&mut self, name: &str, info: VarInfo) -> Result<(), String> {
        let top = self.frames.last_mut().unwrap();
        if top.contains_key(name) {
            return Err(format!(
                "variable \"{name}\" already declared in this scope"
            ));
        }
        top.insert(name.to_string(), info);
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<&VarInfo> {
        self.frames.iter().rev().find_map(|f| f.get(name))
    }

    fn push(&mut self) {
        self.frames.push(HashMap::new());
    }

    #[allow(dead_code)] // symmetry with push; used by future passes
    fn pop(&mut self) {
        self.frames.pop();
    }
}

struct Codegen {
    preamble: String,
    sigs: HashMap<String, FuncSig>,
    tmp: u64,
    procn: u64,
}

fn err<T>(line: usize, msg: impl std::fmt::Display) -> Result<T, CompileError> {
    Err(CompileError {
        message: msg.to_string(),
        line,
    })
}

/// Builtin signature: (inputs, output); variadic handled specially.
fn builtin_sig(name: &str) -> Option<(&'static [Type], Type)> {
    use Type::*;
    Some(match name {
        "strlen" => (&[Str], Int),
        "toint" => (&[Str], Int),
        "fromint" => (&[Int], Str),
        "tofloat" => (&[Str], Float),
        "fromfloat" => (&[Float], Str),
        "itof" => (&[Int], Float),
        "ftoi" => (&[Float], Int),
        "sqrt" | "exp" | "log" | "log10" | "sin" | "cos" | "floor" | "ceil" | "round"
        | "abs_float" => (&[Float], Float),
        "pow" | "atan2" | "fmod" | "hypot" => (&[Float, Float], Float),
        "abs_int" => (&[Int], Int),
        "max_int" | "min_int" => (&[Int, Int], Int),
        "python" | "r" => (&[Str, Str], Str),
        "sh" => (&[Str], Str),
        _ => return None,
    })
}

impl Codegen {
    fn new() -> Self {
        Codegen {
            preamble: String::new(),
            sigs: HashMap::new(),
            tmp: 0,
            procn: 0,
        }
    }

    fn fresh_tmp(&mut self) -> String {
        self.tmp += 1;
        format!("t{}", self.tmp)
    }

    fn fresh_proc(&mut self, kind: &str) -> String {
        self.procn += 1;
        format!("swp:{kind}{}", self.procn)
    }

    fn collect_signatures(&mut self, prog: &Program) -> Result<(), CompileError> {
        for f in &prog.functions {
            // Special forms cannot be redefined; ordinary library builtins
            // (sqrt, hypot, python, ...) may be shadowed by user functions.
            if self.sigs.contains_key(&f.name)
                || matches!(
                    f.name.as_str(),
                    "printf" | "trace" | "assert" | "strcat" | "size" | "argv"
                )
            {
                return err(f.line, format!("function \"{}\" already defined", f.name));
            }
            let kind = match f.body {
                FuncBody::Composite(_) => FuncKind::Composite,
                FuncBody::TclLeaf { .. } => FuncKind::TclLeaf,
            };
            if kind == FuncKind::TclLeaf {
                for p in &f.outputs {
                    if matches!(p.ty, Type::Array(_)) {
                        return err(f.line, "leaf functions cannot have array outputs");
                    }
                }
            }
            self.sigs.insert(
                f.name.clone(),
                FuncSig {
                    outputs: f.outputs.iter().map(|p| p.ty.clone()).collect(),
                    inputs: f.inputs.iter().map(|p| p.ty.clone()).collect(),
                    kind,
                },
            );
        }
        Ok(())
    }

    // ---- declarations & helpers --------------------------------------

    fn emit_create(&self, out: &mut String, tcl: &str, ty: &Type) {
        out.push_str(&format!(
            "set {tcl} [turbine::unique]\nturbine::create ${tcl} {}\n",
            ty.turbine_name()
        ));
    }

    fn alloc_td(&mut self, out: &mut String, ty: &Type) -> String {
        let t = self.fresh_tmp();
        self.emit_create(out, &t, ty);
        t
    }

    fn close_scope_containers(&self, scope: &Scope, out: &mut String) {
        for c in &scope.owned_containers {
            out.push_str(&format!("turbine::container_close ${c}\n"));
        }
    }

    // ---- functions -----------------------------------------------------

    fn emit_function(&mut self, f: &FuncDef) -> Result<(), CompileError> {
        match &f.body {
            FuncBody::Composite(body) => self.emit_composite(f, body),
            FuncBody::TclLeaf { package, template } => self.emit_tcl_leaf(f, package, template),
        }
    }

    fn emit_composite(&mut self, f: &FuncDef, body: &[Stmt]) -> Result<(), CompileError> {
        let mut scope = Scope::new();
        let mut params = Vec::new();
        for p in f.outputs.iter().chain(&f.inputs) {
            let tcl = format!("p_{}", p.name);
            scope
                .declare(
                    &p.name,
                    VarInfo {
                        ty: p.ty.clone(),
                        tcl: tcl.clone(),
                    },
                )
                .map_err(|m| CompileError {
                    message: m,
                    line: f.line,
                })?;
            params.push(tcl);
        }
        let mut code = String::new();
        self.emit_block(body, &mut scope, &mut code)?;
        self.close_scope_containers(&scope, &mut code);
        self.preamble.push_str(&format!(
            "proc swift:{} {{{}}} {{\n{}}}\n",
            f.name,
            params.join(" "),
            indent(&code)
        ));
        Ok(())
    }

    /// The paper's §III.A leaf feature: a Tcl template with `<<x>>`
    /// placeholders, automatic dataflow insertion, and type conversion.
    fn emit_tcl_leaf(
        &mut self,
        f: &FuncDef,
        package: &Option<(String, String)>,
        template: &str,
    ) -> Result<(), CompileError> {
        let params: Vec<String> = f
            .outputs
            .iter()
            .chain(&f.inputs)
            .map(|p| format!("p_{}", p.name))
            .collect();

        // Substitute placeholders: inputs become `$name` (the retrieved
        // value variable), outputs become `name` (a variable the template
        // assigns, e.g. `set <<o>> ...`).
        let mut body = template.to_string();
        for p in &f.inputs {
            body = body.replace(&format!("<<{}>>", p.name), &format!("${}", p.name));
        }
        for p in &f.outputs {
            body = body.replace(&format!("<<{}>>", p.name), &p.name);
        }
        if body.contains("<<") {
            return err(
                f.line,
                format!(
                    "template for \"{}\" references unknown <<placeholders>>",
                    f.name
                ),
            );
        }

        let mut task = String::new();
        if let Some((pkg, _version)) = package {
            task.push_str(&format!("package require {pkg}\n"));
        }
        for p in &f.inputs {
            let retrieve = match p.ty {
                Type::Int | Type::Bool => "turbine::retrieve_integer",
                Type::Float => "turbine::retrieve_float",
                Type::Str => "turbine::retrieve_string",
                Type::Blob => "turbine::retrieve_blob",
                Type::Void => continue,
                Type::Array(_) => {
                    // Arrays are passed by container id: the template can
                    // walk them with turbine::container_* commands. The
                    // rule below waits for the whole container to close.
                    task.push_str(&format!("set {} $p_{}\n", p.name, p.name));
                    continue;
                }
            };
            task.push_str(&format!("set {} [{retrieve} $p_{}]\n", p.name, p.name));
        }
        task.push_str(&body);
        task.push('\n');
        for p in &f.outputs {
            let store = match p.ty {
                Type::Int | Type::Bool => "turbine::store_integer",
                Type::Float => "turbine::store_float",
                Type::Str => "turbine::store_string",
                Type::Blob => "turbine::store_blob",
                Type::Void => "turbine::store_void",
                Type::Array(_) => unreachable!(),
            };
            if p.ty == Type::Void {
                task.push_str(&format!("{store} $p_{}\n", p.name));
            } else {
                task.push_str(&format!("{store} $p_{} ${}\n", p.name, p.name));
            }
        }

        // Rule half: wait on all inputs, then run the task as leaf work.
        let input_list = f
            .inputs
            .iter()
            .map(|p| format!("$p_{}", p.name))
            .collect::<Vec<_>>()
            .join(" ");
        let arg_refs = params
            .iter()
            .map(|p| format!("${p}"))
            .collect::<Vec<_>>()
            .join(" ");
        self.preamble.push_str(&format!(
            "proc swift:{name} {{{params}}} {{\n    turbine::rule [list {input_list}] \"swift:{name}_task {arg_refs}\" work\n}}\nproc swift:{name}_task {{{params}}} {{\n{task_body}}}\n",
            name = f.name,
            params = params.join(" "),
            task_body = indent(&task),
        ));
        Ok(())
    }

    // ---- statements -----------------------------------------------------

    fn emit_block(
        &mut self,
        stmts: &[Stmt],
        scope: &mut Scope,
        out: &mut String,
    ) -> Result<(), CompileError> {
        for s in stmts {
            self.emit_stmt(s, scope, out)?;
        }
        Ok(())
    }

    fn emit_stmt(
        &mut self,
        stmt: &Stmt,
        scope: &mut Scope,
        out: &mut String,
    ) -> Result<(), CompileError> {
        let stmt_line = match stmt {
            Stmt::Decl { line, .. }
            | Stmt::Assign { line, .. }
            | Stmt::Call { line, .. }
            | Stmt::MultiAssign { line, .. }
            | Stmt::Foreach { line, .. }
            | Stmt::If { line, .. } => *line,
        };
        self.emit_stmt_inner(stmt, scope, out).map_err(|mut e| {
            if e.line == 0 {
                e.line = stmt_line;
            }
            e
        })
    }

    fn emit_stmt_inner(
        &mut self,
        stmt: &Stmt,
        scope: &mut Scope,
        out: &mut String,
    ) -> Result<(), CompileError> {
        match stmt {
            Stmt::Decl {
                ty,
                name,
                init,
                line,
            } => {
                if *ty == Type::Void && init.is_some() {
                    return err(*line, "void variables cannot be initialized");
                }
                let tcl = format!("v_{name}_{}", {
                    self.tmp += 1;
                    self.tmp
                });
                self.emit_create(out, &tcl, ty);
                if matches!(ty, Type::Array(_)) {
                    scope.owned_containers.push(tcl.clone());
                }
                scope
                    .declare(
                        name,
                        VarInfo {
                            ty: ty.clone(),
                            tcl: tcl.clone(),
                        },
                    )
                    .map_err(|m| CompileError {
                        message: m,
                        line: *line,
                    })?;
                if let Some(e) = init {
                    self.compile_into(e, &tcl, ty, scope, out)?;
                }
                Ok(())
            }
            Stmt::Assign {
                target,
                value,
                line,
            } => match target {
                LValue::Var(name) => {
                    let (tcl, ty) = {
                        let info = scope.lookup(name).ok_or_else(|| CompileError {
                            message: format!("undefined variable \"{name}\""),
                            line: *line,
                        })?;
                        (info.tcl.clone(), info.ty.clone())
                    };
                    if matches!(ty, Type::Array(_)) {
                        return err(*line, "whole-array assignment is not supported");
                    }
                    self.compile_into(value, &tcl, &ty, scope, out)
                }
                LValue::Index(name, idx) => {
                    let (ctcl, elem_ty) = {
                        let info = scope.lookup(name).ok_or_else(|| CompileError {
                            message: format!("undefined variable \"{name}\""),
                            line: *line,
                        })?;
                        match &info.ty {
                            Type::Array(e) => (info.tcl.clone(), (**e).clone()),
                            other => {
                                return err(
                                    *line,
                                    format!("\"{name}\" is {} , not an array", other.swift_name()),
                                )
                            }
                        }
                    };
                    if matches!(elem_ty, Type::Blob | Type::Array(_)) {
                        return err(*line, "arrays of blobs/arrays are not supported");
                    }
                    let (idx_td, idx_ty) = self.compile_expr(idx, scope, out)?;
                    if idx_ty != Type::Int {
                        return err(*line, "array subscripts must be int");
                    }
                    let (val_td, _) = self.compile_expr_expect(value, &elem_ty, scope, out)?;
                    out.push_str(&format!(
                        "turbine::write_refcount_incr ${ctcl} 1\nswt:cinsert_when ${ctcl} ${idx_td} ${val_td} {}\n",
                        elem_ty.turbine_name()
                    ));
                    Ok(())
                }
            },
            Stmt::Call { call, line } => {
                let n_outputs = if let Some(sig) = self.sigs.get(&call.name) {
                    sig.outputs.len()
                } else {
                    0
                };
                if self.sigs.contains_key(&call.name) && n_outputs > 0 {
                    return err(
                        *line,
                        format!(
                            "call to \"{}\" discards its {} output(s)",
                            call.name, n_outputs
                        ),
                    );
                }
                self.emit_call(call, None, scope, out)
            }
            Stmt::MultiAssign {
                targets,
                call,
                line,
            } => {
                let sig = self
                    .sigs
                    .get(&call.name)
                    .cloned()
                    .ok_or_else(|| CompileError {
                        message: format!("unknown function \"{}\"", call.name),
                        line: *line,
                    })?;
                if sig.outputs.len() != targets.len() {
                    return err(
                        *line,
                        format!(
                            "function \"{}\" has {} output(s), but {} target(s) given",
                            call.name,
                            sig.outputs.len(),
                            targets.len()
                        ),
                    );
                }
                if call.args.len() != sig.inputs.len() {
                    return err(
                        *line,
                        format!(
                            "function \"{}\" takes {} argument(s), got {}",
                            call.name,
                            sig.inputs.len(),
                            call.args.len()
                        ),
                    );
                }
                let mut argv = Vec::new();
                for (t, oty) in targets.iter().zip(&sig.outputs) {
                    let info = scope.lookup(t).ok_or_else(|| CompileError {
                        message: format!("undefined variable \"{t}\""),
                        line: *line,
                    })?;
                    if &info.ty != oty {
                        return err(
                            *line,
                            format!(
                                "output \"{t}\" is {}, function produces {} (type mismatch)",
                                info.ty.swift_name(),
                                oty.swift_name()
                            ),
                        );
                    }
                    argv.push(format!("${}", info.tcl));
                }
                for (a, ity) in call.args.iter().zip(&sig.inputs.clone()) {
                    let (td, _) = self.compile_expr_expect(a, ity, scope, out)?;
                    argv.push(format!("${td}"));
                }
                out.push_str(&format!("swift:{} {}\n", call.name, argv.join(" ")));
                Ok(())
            }
            Stmt::Foreach {
                value_var,
                index_var,
                iterable,
                body,
                line,
            } => self.emit_foreach(
                value_var,
                index_var.as_deref(),
                iterable,
                body,
                *line,
                scope,
                out,
            ),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                line,
            } => self.emit_if(cond, then_branch, else_branch, *line, scope, out),
        }
    }

    // ---- expressions -----------------------------------------------------

    fn infer_type(&self, e: &Expr, scope: &Scope) -> Result<Type, CompileError> {
        Ok(match e {
            Expr::IntLit(_) => Type::Int,
            Expr::FloatLit(_) => Type::Float,
            Expr::StrLit(_) => Type::Str,
            Expr::BoolLit(_) => Type::Bool,
            Expr::Var(name) => scope
                .lookup(name)
                .ok_or_else(|| CompileError {
                    message: format!("undefined variable \"{name}\""),
                    line: e.line(),
                })?
                .ty
                .clone(),
            Expr::Index(name, _, line) => {
                let info = scope.lookup(name).ok_or_else(|| CompileError {
                    message: format!("undefined variable \"{name}\""),
                    line: *line,
                })?;
                match &info.ty {
                    Type::Array(elem) => (**elem).clone(),
                    other => {
                        return err(
                            *line,
                            format!("\"{name}\" is {}, not an array", other.swift_name()),
                        )
                    }
                }
            }
            Expr::Call(c) => {
                if c.name == "strcat" {
                    return Ok(Type::Str);
                }
                if c.name == "size" {
                    return Ok(Type::Int);
                }
                if c.name == "argv" {
                    return Ok(Type::Str);
                }
                // User definitions shadow library builtins.
                if !self.sigs.contains_key(&c.name) {
                    if let Some((_, ret)) = builtin_sig(&c.name) {
                        return Ok(ret);
                    }
                }
                let sig = self.sigs.get(&c.name).ok_or_else(|| CompileError {
                    message: format!("unknown function \"{}\"", c.name),
                    line: c.line,
                })?;
                if sig.outputs.len() != 1 {
                    return err(
                        c.line,
                        format!(
                            "function \"{}\" has {} outputs; only single-output calls can be used as expressions",
                            c.name,
                            sig.outputs.len()
                        ),
                    );
                }
                sig.outputs[0].clone()
            }
            Expr::Unary("-", inner, line) => {
                let t = self.infer_type(inner, scope)?;
                if !matches!(t, Type::Int | Type::Float) {
                    return err(*line, "unary '-' needs a numeric operand");
                }
                t
            }
            Expr::Unary("!", inner, line) => {
                let t = self.infer_type(inner, scope)?;
                if t != Type::Bool {
                    return err(*line, "'!' needs a boolean operand");
                }
                Type::Bool
            }
            Expr::Unary(op, _, line) => return err(*line, format!("unknown unary {op}")),
            Expr::Binary(op, l, r, line) => {
                // Booleans are integers (0/1) in arithmetic contexts.
                let norm = |t: Type| if t == Type::Bool { Type::Int } else { t };
                let lt = norm(self.infer_type(l, scope)?);
                let rt = norm(self.infer_type(r, scope)?);
                match *op {
                    "+" | "-" | "*" | "/" | "%" | "**" => match (&lt, &rt) {
                        (Type::Int, Type::Int) => Type::Int,
                        (Type::Float, Type::Float)
                        | (Type::Int, Type::Float)
                        | (Type::Float, Type::Int) => Type::Float,
                        _ => {
                            return err(
                                *line,
                                format!(
                                    "operator '{op}' needs numeric operands, got {} and {} (wrong types)",
                                    lt.swift_name(),
                                    rt.swift_name()
                                ),
                            )
                        }
                    },
                    "==" | "!=" => {
                        let compatible = lt == rt
                            || matches!(
                                (&lt, &rt),
                                (Type::Int, Type::Float) | (Type::Float, Type::Int)
                            );
                        if !compatible || matches!(lt, Type::Array(_) | Type::Blob | Type::Void) {
                            return err(
                                *line,
                                format!(
                                    "cannot compare {} with {} (type mismatch)",
                                    lt.swift_name(),
                                    rt.swift_name()
                                ),
                            );
                        }
                        Type::Bool
                    }
                    "<" | "<=" | ">" | ">=" => match (&lt, &rt) {
                        (Type::Int, Type::Int)
                        | (Type::Float, Type::Float)
                        | (Type::Int, Type::Float)
                        | (Type::Float, Type::Int) => Type::Bool,
                        _ => {
                            return err(
                                *line,
                                format!(
                                    "comparison needs numeric operands, got {} and {} (wrong types)",
                                    lt.swift_name(),
                                    rt.swift_name()
                                ),
                            )
                        }
                    },
                    "&&" | "||" => {
                        // After normalization booleans read as Int; accept
                        // any integer-valued operands (0/1 semantics).
                        if lt != Type::Int || rt != Type::Int {
                            return err(*line, format!("'{op}' needs boolean operands"));
                        }
                        Type::Bool
                    }
                    other => return err(*line, format!("unknown operator {other}")),
                }
            }
        })
    }

    /// Compile an expression into a fresh datum; returns `(tcl_var, type)`.
    fn compile_expr(
        &mut self,
        e: &Expr,
        scope: &mut Scope,
        out: &mut String,
    ) -> Result<(String, Type), CompileError> {
        // Variables need no copy: reuse the existing datum.
        if let Expr::Var(name) = e {
            let info = scope.lookup(name).ok_or_else(|| CompileError {
                message: format!("undefined variable \"{name}\""),
                line: e.line(),
            })?;
            return Ok((info.tcl.clone(), info.ty.clone()));
        }
        let ty = self.infer_type(e, scope)?;
        let td = self.alloc_td(out, &ty);
        self.compile_into(e, &td, &ty, scope, out)?;
        Ok((td, ty))
    }

    /// Compile an expression of an expected type (inserting int→float
    /// promotion when needed).
    fn compile_expr_expect(
        &mut self,
        e: &Expr,
        expected: &Type,
        scope: &mut Scope,
        out: &mut String,
    ) -> Result<(String, Type), CompileError> {
        let actual = self.infer_type(e, scope)?;
        let bool_int = |a: &Type, b: &Type| {
            matches!((a, b), (Type::Bool, Type::Int) | (Type::Int, Type::Bool))
        };
        if &actual == expected || bool_int(&actual, expected) {
            return self.compile_expr(e, scope, out);
        }
        if actual == Type::Int && *expected == Type::Float {
            let (itd, _) = self.compile_expr(e, scope, out)?;
            let ftd = self.alloc_td(out, &Type::Float);
            out.push_str(&format!("swt:itof ${ftd} ${itd}\n"));
            return Ok((ftd, Type::Float));
        }
        err(
            e.line(),
            format!(
                "expected {}, got {} (type mismatch)",
                expected.swift_name(),
                actual.swift_name()
            ),
        )
    }

    /// Compile an expression so that its result is stored into `target`.
    fn compile_into(
        &mut self,
        e: &Expr,
        target: &str,
        target_ty: &Type,
        scope: &mut Scope,
        out: &mut String,
    ) -> Result<(), CompileError> {
        // Promotion: compile as the actual type, then convert.
        let actual = self.infer_type(e, scope)?;
        if actual == Type::Int && *target_ty == Type::Float {
            let (itd, _) = self.compile_expr(e, scope, out)?;
            out.push_str(&format!("swt:itof ${target} ${itd}\n"));
            return Ok(());
        }
        if &actual != target_ty
            && !(actual == Type::Bool && *target_ty == Type::Int)
            && !(actual == Type::Int && *target_ty == Type::Bool)
        {
            return err(
                e.line(),
                format!(
                    "cannot assign {} to {} (type mismatch)",
                    actual.swift_name(),
                    target_ty.swift_name()
                ),
            );
        }
        match e {
            Expr::IntLit(v) => {
                out.push_str(&format!("turbine::store_integer ${target} {v}\n"));
                Ok(())
            }
            Expr::FloatLit(v) => {
                out.push_str(&format!(
                    "turbine::store_float ${target} {}\n",
                    tclish::format_double(*v)
                ));
                Ok(())
            }
            Expr::BoolLit(b) => {
                out.push_str(&format!("turbine::store_integer ${target} {}\n", *b as i64));
                Ok(())
            }
            Expr::StrLit(s) => {
                out.push_str(&format!(
                    "turbine::store_string ${target} {}\n",
                    tcl_quote(s)
                ));
                Ok(())
            }
            Expr::Var(name) => {
                let src = scope.lookup(name).unwrap().tcl.clone();
                out.push_str(&format!(
                    "swt:copy {} ${target} ${src}\n",
                    target_ty.turbine_name()
                ));
                Ok(())
            }
            Expr::Index(name, idx, line) => {
                let ctcl = scope.lookup(name).unwrap().tcl.clone();
                let (idx_td, idx_ty) = self.compile_expr(idx, scope, out)?;
                if idx_ty != Type::Int {
                    return err(*line, "array subscripts must be int");
                }
                out.push_str(&format!(
                    "swt:clookup {} ${target} ${ctcl} ${idx_td}\n",
                    actual.turbine_name()
                ));
                Ok(())
            }
            Expr::Call(c) => self.emit_call(c, Some(target), scope, out),
            Expr::Unary("-", inner, _) => {
                let (td, t) = self.compile_expr(inner, scope, out)?;
                let proc = if t == Type::Float {
                    "swt:neg_float"
                } else {
                    "swt:neg_int"
                };
                out.push_str(&format!("{proc} ${target} ${td}\n"));
                Ok(())
            }
            Expr::Unary("!", inner, _) => {
                let (td, _) = self.compile_expr(inner, scope, out)?;
                out.push_str(&format!("swt:not ${target} ${td}\n"));
                Ok(())
            }
            Expr::Unary(..) => unreachable!("rejected by infer_type"),
            Expr::Binary(op, l, r, _) => {
                let lt = self.infer_type(l, scope)?;
                let rt = self.infer_type(r, scope)?;
                let float_op = lt == Type::Float || rt == Type::Float;
                let is_cmp = matches!(*op, "==" | "!=" | "<" | "<=" | ">" | ">=");
                let is_bool = matches!(*op, "&&" | "||");
                // String equality.
                if is_cmp && lt == Type::Str {
                    let (a, _) = self.compile_expr(l, scope, out)?;
                    let (b, _) = self.compile_expr(r, scope, out)?;
                    out.push_str(&format!("swt:scmp {op} ${target} ${a} ${b}\n"));
                    return Ok(());
                }
                let operand_ty = if is_bool {
                    Type::Bool
                } else if float_op {
                    Type::Float
                } else {
                    Type::Int
                };
                let (a, _) = self.compile_expr_expect(l, &operand_ty, scope, out)?;
                let (b, _) = self.compile_expr_expect(r, &operand_ty, scope, out)?;
                let proc = if is_bool {
                    "swt:ibinop"
                } else if is_cmp {
                    if operand_ty == Type::Float {
                        "swt:fcmp"
                    } else {
                        "swt:icmp"
                    }
                } else if operand_ty == Type::Float {
                    "swt:fbinop"
                } else {
                    "swt:ibinop"
                };
                out.push_str(&format!("{proc} {op} ${target} ${a} ${b}\n"));
                Ok(())
            }
        }
    }

    // ---- calls -------------------------------------------------------------

    fn emit_call(
        &mut self,
        c: &CallExpr,
        target: Option<&str>,
        scope: &mut Scope,
        out: &mut String,
    ) -> Result<(), CompileError> {
        let line = c.line;
        match c.name.as_str() {
            "printf" | "trace" => {
                let (fmt, rest) = if c.name == "printf" {
                    match c.args.first() {
                        Some(Expr::StrLit(s)) => (Some(s.clone()), &c.args[1..]),
                        Some(_) => return err(line, "printf format must be a string literal"),
                        None => return err(line, "printf needs a format string"),
                    }
                } else {
                    (None, &c.args[..])
                };
                let mut tds = Vec::new();
                let mut types = Vec::new();
                for a in rest {
                    let (td, ty) = self.compile_expr(a, scope, out)?;
                    if matches!(ty, Type::Array(_) | Type::Blob) {
                        return err(line, "printf/trace arguments must be scalars");
                    }
                    types.push(ty.turbine_name());
                    tds.push(format!("${td}"));
                }
                if let Some(fmt) = fmt {
                    out.push_str(&format!(
                        "swt:printf {} {{{}}} {}\n",
                        tcl_quote(&fmt),
                        types.join(" "),
                        tds.join(" ")
                    ));
                } else {
                    out.push_str(&format!(
                        "swt:trace {{{}}} {}\n",
                        types.join(" "),
                        tds.join(" ")
                    ));
                }
                Ok(())
            }
            "assert" => {
                if c.args.len() != 2 {
                    return err(line, "assert(condition, message) takes two arguments");
                }
                let (cond, _) = self.compile_expr_expect(&c.args[0], &Type::Bool, scope, out)?;
                let (msg, _) = self.compile_expr_expect(&c.args[1], &Type::Str, scope, out)?;
                out.push_str(&format!("swt:assert ${cond} ${msg}\n"));
                Ok(())
            }
            "strcat" => {
                let target = target.ok_or_else(|| CompileError {
                    message: "strcat returns a value; use it in an expression".into(),
                    line,
                })?;
                let mut tds = Vec::new();
                for a in &c.args {
                    let (td, _) = self.compile_expr_expect(a, &Type::Str, scope, out)?;
                    tds.push(format!("${td}"));
                }
                out.push_str(&format!("swt:strcat ${target} {}\n", tds.join(" ")));
                Ok(())
            }
            "argv" => {
                let target = target.ok_or_else(|| CompileError {
                    message: "argv returns a value; use it in an expression".into(),
                    line,
                })?;
                let (key, default) = match (c.args.first(), c.args.get(1)) {
                    (Some(Expr::StrLit(k)), None) => (k.clone(), None),
                    (Some(Expr::StrLit(k)), Some(Expr::StrLit(d))) => (k.clone(), Some(d.clone())),
                    _ => return err(line, "argv(key) / argv(key, default) take string literals"),
                };
                // Arguments are known at startup; store immediately.
                match default {
                    Some(d) => out.push_str(&format!(
                        "turbine::store_string ${target} [turbine::argv {} {}]\n",
                        tcl_quote(&key),
                        tcl_quote(&d)
                    )),
                    None => out.push_str(&format!(
                        "turbine::store_string ${target} [turbine::argv {}]\n",
                        tcl_quote(&key)
                    )),
                }
                Ok(())
            }
            "size" => {
                let target = target.ok_or_else(|| CompileError {
                    message: "size returns a value; use it in an expression".into(),
                    line,
                })?;
                if c.args.len() != 1 {
                    return err(line, "size(array) takes one argument");
                }
                let (td, ty) = self.compile_expr(&c.args[0], scope, out)?;
                if !matches!(ty, Type::Array(_)) {
                    return err(line, "size() needs an array");
                }
                out.push_str(&format!("swt:csize ${target} ${td}\n"));
                Ok(())
            }
            name if builtin_sig(name).is_some() && !self.sigs.contains_key(name) => {
                let (ins, ret) = builtin_sig(name).unwrap();
                if c.args.len() != ins.len() {
                    return err(
                        line,
                        format!(
                            "{name}() takes {} argument(s), got {}",
                            ins.len(),
                            c.args.len()
                        ),
                    );
                }
                let target = match target {
                    Some(t) => t.to_string(),
                    None => {
                        // Result discarded: still evaluate (e.g. sh() for
                        // effect) into a throwaway datum.
                        self.alloc_td(out, &ret)
                    }
                };
                let mut tds = Vec::new();
                for (a, ity) in c.args.iter().zip(ins) {
                    let (td, _) = self.compile_expr_expect(a, ity, scope, out)?;
                    tds.push(format!("${td}"));
                }
                let proc = match name {
                    "sqrt" | "exp" | "log" | "log10" | "sin" | "cos" | "floor" | "ceil"
                    | "round" => {
                        out.push_str(&format!("swt:fmath {name} ${target} {}\n", tds.join(" ")));
                        return Ok(());
                    }
                    "abs_float" => {
                        out.push_str(&format!("swt:fmath abs ${target} {}\n", tds.join(" ")));
                        return Ok(());
                    }
                    "pow" | "atan2" | "fmod" | "hypot" => {
                        out.push_str(&format!("swt:fmath2 {name} ${target} {}\n", tds.join(" ")));
                        return Ok(());
                    }
                    "abs_int" => {
                        out.push_str(&format!("swt:iabs ${target} {}\n", tds.join(" ")));
                        return Ok(());
                    }
                    "max_int" | "min_int" => {
                        let which = &name[..3];
                        out.push_str(&format!(
                            "swt:iminmax {which} ${target} {}\n",
                            tds.join(" ")
                        ));
                        return Ok(());
                    }
                    other => format!("swt:{other}"),
                };
                out.push_str(&format!("{proc} ${target} {}\n", tds.join(" ")));
                Ok(())
            }
            _ => {
                let sig = self
                    .sigs
                    .get(&c.name)
                    .cloned()
                    .ok_or_else(|| CompileError {
                        message: format!("unknown function \"{}\"", c.name),
                        line,
                    })?;
                if c.args.len() != sig.inputs.len() {
                    return err(
                        line,
                        format!(
                            "function \"{}\" takes {} argument(s), got {}",
                            c.name,
                            sig.inputs.len(),
                            c.args.len()
                        ),
                    );
                }
                let mut argv = Vec::new();
                // Outputs first (STC convention).
                match (target, sig.outputs.len()) {
                    (Some(t), 1) => argv.push(format!("${t}")),
                    (None, 0) => {}
                    (None, _) => unreachable!("checked by caller"),
                    (Some(_), n) => {
                        return err(
                            line,
                            format!("function \"{}\" has {n} outputs, expected 1", c.name),
                        )
                    }
                }
                for (a, ity) in c.args.iter().zip(&sig.inputs) {
                    let (td, _) = self.compile_expr_expect(a, ity, scope, out)?;
                    argv.push(format!("${td}"));
                }
                out.push_str(&format!("swift:{} {}\n", c.name, argv.join(" ")));
                Ok(())
            }
        }
    }

    // ---- foreach -------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn emit_foreach(
        &mut self,
        value_var: &str,
        index_var: Option<&str>,
        iterable: &Iterable,
        body: &[Stmt],
        line: usize,
        scope: &mut Scope,
        out: &mut String,
    ) -> Result<(), CompileError> {
        // Captured enclosing-scope variables used in the body.
        let mut bound: Vec<String> = vec![value_var.to_string()];
        if let Some(i) = index_var {
            bound.push(i.to_string());
        }
        let free = free_vars(body, &bound);
        let mut captured: Vec<(String, VarInfo)> = Vec::new();
        for name in &free {
            if let Some(info) = scope.lookup(name) {
                captured.push((name.clone(), info.clone()));
            }
            // Unknown names will error during body compilation with a
            // proper line number.
        }
        // Containers (from enclosing scope) written in the body need slot
        // reservations spanning the asynchronous loop execution.
        let written = containers_written(body);
        let mut written_tcl = Vec::new();
        for w in &written {
            if let Some(info) = scope.lookup(w) {
                if matches!(info.ty, Type::Array(_)) && captured.iter().any(|(n, _)| n == w) {
                    written_tcl.push(info.tcl.clone());
                }
            }
        }

        // Generate the body proc: params are the loop value (+ index) as
        // *values*, then the captured datum ids under their original
        // Tcl names.
        let elem_ty = match iterable {
            Iterable::Range(..) => Type::Int,
            Iterable::Array(a) => match self.infer_type(a, scope)? {
                Type::Array(e) => (*e).clone(),
                other => return err(line, format!("cannot iterate over {}", other.swift_name())),
            },
        };
        if matches!(elem_ty, Type::Blob | Type::Array(_)) {
            return err(
                line,
                "foreach over blob/array-of-array containers is not supported",
            );
        }

        let mut body_scope = Scope::new();
        for (name, info) in &captured {
            body_scope
                .declare(name, info.clone())
                .map_err(|m| CompileError { message: m, line })?;
        }
        body_scope.push();
        let mut body_code = String::new();
        // Loop variable TDs created inside the body from passed values.
        let vv_tcl = format!("lv_{value_var}");
        self.emit_create(&mut body_code, &vv_tcl, &elem_ty);
        let store = match elem_ty {
            Type::Int | Type::Bool => "turbine::store_integer",
            Type::Float => "turbine::store_float",
            Type::Str => "turbine::store_string",
            _ => unreachable!(),
        };
        body_code.push_str(&format!("{store} ${vv_tcl} $__val\n"));
        body_scope
            .declare(
                value_var,
                VarInfo {
                    ty: elem_ty.clone(),
                    tcl: vv_tcl,
                },
            )
            .map_err(|m| CompileError { message: m, line })?;
        if let Some(iv) = index_var {
            let iv_tcl = format!("lv_{iv}");
            self.emit_create(&mut body_code, &iv_tcl, &Type::Int);
            body_code.push_str(&format!("turbine::store_integer ${iv_tcl} $__idx\n"));
            body_scope
                .declare(
                    iv,
                    VarInfo {
                        ty: Type::Int,
                        tcl: iv_tcl,
                    },
                )
                .map_err(|m| CompileError { message: m, line })?;
        }
        self.emit_block(body, &mut body_scope, &mut body_code)?;
        self.close_scope_containers(&body_scope, &mut body_code);

        let proc_name = self.fresh_proc("loop");
        let cap_params: Vec<String> = captured.iter().map(|(_, i)| i.tcl.clone()).collect();
        self.preamble.push_str(&format!(
            "proc {proc_name} {{__val __idx {params}}} {{\n{body}}}\n",
            params = cap_params.join(" "),
            body = indent(&body_code),
        ));

        let cap_refs: Vec<String> = captured
            .iter()
            .map(|(_, i)| format!("${}", i.tcl))
            .collect();
        let containers_list = written_tcl
            .iter()
            .map(|c| format!("${c}"))
            .collect::<Vec<_>>()
            .join(" ");

        // Reserve one slot per written container for the whole loop.
        for c in &written_tcl {
            out.push_str(&format!("turbine::write_refcount_incr ${c} 1\n"));
        }

        match iterable {
            Iterable::Range(start, end, step) => {
                if let Some(s) = step {
                    // Only unit step is supported; checked when constant.
                    if !matches!(s, Expr::IntLit(1)) {
                        return err(line, "only step 1 ranges are supported");
                    }
                }
                let (std_, _) = self.compile_expr_expect(start, &Type::Int, scope, out)?;
                let (etd, _) = self.compile_expr_expect(end, &Type::Int, scope, out)?;
                // Build the action with [list ...] so that the captured-ids
                // and containers sublists stay single words even when empty
                // or multi-element.
                out.push_str(&format!(
                    "turbine::rule [list ${std_} ${etd}] [list swt:range_foreach_deferred {proc_name} [list {caps}] [list {containers_list}] ${std_} ${etd}] control\n",
                    caps = cap_refs.join(" "),
                ));
            }
            Iterable::Array(a) => {
                let (atd, _) = self.compile_expr(a, scope, out)?;
                out.push_str(&format!(
                    "turbine::rule [list ${atd}] [list swt:array_foreach_go {proc_name} [list {caps}] [list {containers_list}] ${atd}] control\n",
                    caps = cap_refs.join(" "),
                ));
            }
        }
        Ok(())
    }

    // ---- if --------------------------------------------------------------------

    fn emit_if(
        &mut self,
        cond: &Expr,
        then_branch: &[Stmt],
        else_branch: &[Stmt],
        line: usize,
        scope: &mut Scope,
        out: &mut String,
    ) -> Result<(), CompileError> {
        let (cond_td, cond_ty) = self.compile_expr(cond, scope, out)?;
        if !matches!(cond_ty, Type::Bool | Type::Int) {
            return err(line, "if condition must be boolean");
        }

        let emit_branch = |cg: &mut Codegen,
                           branch: &[Stmt],
                           scope: &mut Scope,
                           released: &[String]|
         -> Result<(String, Vec<String>), CompileError> {
            let free = free_vars(branch, &[]);
            let mut captured: Vec<(String, VarInfo)> = Vec::new();
            for name in &free {
                if let Some(info) = scope.lookup(name) {
                    captured.push((name.clone(), info.clone()));
                }
            }
            let mut bscope = Scope::new();
            for (name, info) in &captured {
                bscope
                    .declare(name, info.clone())
                    .map_err(|m| CompileError { message: m, line })?;
            }
            bscope.push();
            let mut code = String::new();
            cg.emit_block(branch, &mut bscope, &mut code)?;
            cg.close_scope_containers(&bscope, &mut code);
            for c in released {
                code.push_str(&format!("turbine::write_refcount_incr ${c} -1\n"));
            }
            let pname = cg.fresh_proc("branch");
            let params: Vec<String> = captured.iter().map(|(_, i)| i.tcl.clone()).collect();
            cg.preamble.push_str(&format!(
                "proc {pname} {{{}}} {{\n{}}}\n",
                params.join(" "),
                indent(&code)
            ));
            let refs: Vec<String> = captured
                .iter()
                .map(|(_, i)| format!("${}", i.tcl))
                .collect();
            Ok((pname, refs))
        };

        // Containers written in either branch: reserve one slot, released
        // by whichever branch runs.
        let mut written = containers_written(then_branch);
        for w in containers_written(else_branch) {
            if !written.contains(&w) {
                written.push(w);
            }
        }
        let mut reserved = Vec::new();
        for w in &written {
            if let Some(info) = scope.lookup(w) {
                if matches!(info.ty, Type::Array(_)) {
                    reserved.push(info.tcl.clone());
                }
            }
        }
        for c in &reserved {
            out.push_str(&format!("turbine::write_refcount_incr ${c} 1\n"));
        }

        let (then_proc, then_refs) = emit_branch(self, then_branch, scope, &reserved)?;
        let (else_proc, else_refs) = emit_branch(self, else_branch, scope, &reserved)?;
        out.push_str(&format!(
            "swt:if ${cond_td} \"{then_proc} {}\" \"{else_proc} {}\"\n",
            then_refs.join(" "),
            else_refs.join(" ")
        ));
        Ok(())
    }
}

/// Quote a literal for safe inclusion in generated Tcl.
fn tcl_quote(s: &str) -> String {
    tclish::format_list(&[s])
}

/// Proc bodies are emitted without reindentation: templates may contain
/// multiline strings (Python code!) whose leading whitespace is
/// significant.
fn indent(code: &str) -> String {
    let mut s = code.to_string();
    if !s.ends_with('\n') {
        s.push('\n');
    }
    s
}

// ---- free-variable and write analysis -----------------------------------

fn free_vars(stmts: &[Stmt], bound: &[String]) -> Vec<String> {
    let mut bound: Vec<String> = bound.to_vec();
    let mut out = Vec::new();
    collect_free_stmts(stmts, &mut bound, &mut out);
    out
}

fn note(name: &str, bound: &[String], out: &mut Vec<String>) {
    if !bound.iter().any(|b| b == name) && !out.iter().any(|o| o == name) {
        out.push(name.to_string());
    }
}

fn collect_free_stmts(stmts: &[Stmt], bound: &mut Vec<String>, out: &mut Vec<String>) {
    for s in stmts {
        match s {
            Stmt::Decl { name, init, .. } => {
                if let Some(e) = init {
                    collect_free_expr(e, bound, out);
                }
                bound.push(name.clone());
            }
            Stmt::Assign { target, value, .. } => {
                match target {
                    LValue::Var(n) => note(n, bound, out),
                    LValue::Index(n, idx) => {
                        note(n, bound, out);
                        collect_free_expr(idx, bound, out);
                    }
                }
                collect_free_expr(value, bound, out);
            }
            Stmt::Call { call, .. } => {
                for a in &call.args {
                    collect_free_expr(a, bound, out);
                }
            }
            Stmt::MultiAssign { targets, call, .. } => {
                for t in targets {
                    note(t, bound, out);
                }
                for a in &call.args {
                    collect_free_expr(a, bound, out);
                }
            }
            Stmt::Foreach {
                value_var,
                index_var,
                iterable,
                body,
                ..
            } => {
                match iterable {
                    Iterable::Range(a, b, step) => {
                        collect_free_expr(a, bound, out);
                        collect_free_expr(b, bound, out);
                        if let Some(st) = step {
                            collect_free_expr(st, bound, out);
                        }
                    }
                    Iterable::Array(e) => collect_free_expr(e, bound, out),
                }
                let mut inner = bound.clone();
                inner.push(value_var.clone());
                if let Some(i) = index_var {
                    inner.push(i.clone());
                }
                collect_free_stmts(body, &mut inner, out);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                collect_free_expr(cond, bound, out);
                let mut t = bound.clone();
                collect_free_stmts(then_branch, &mut t, out);
                let mut e = bound.clone();
                collect_free_stmts(else_branch, &mut e, out);
            }
        }
    }
}

fn collect_free_expr(e: &Expr, bound: &[String], out: &mut Vec<String>) {
    match e {
        Expr::Var(n) => note(n, bound, out),
        Expr::Index(n, idx, _) => {
            note(n, bound, out);
            collect_free_expr(idx, bound, out);
        }
        Expr::Call(c) => {
            for a in &c.args {
                collect_free_expr(a, bound, out);
            }
        }
        Expr::Unary(_, inner, _) => collect_free_expr(inner, bound, out),
        Expr::Binary(_, l, r, _) => {
            collect_free_expr(l, bound, out);
            collect_free_expr(r, bound, out);
        }
        _ => {}
    }
}

/// Names of arrays written (via `A[i] = ...`) anywhere in `stmts`,
/// including nested blocks. Locally declared arrays are excluded by the
/// caller via scope lookup.
fn containers_written(stmts: &[Stmt]) -> Vec<String> {
    let mut out = Vec::new();
    fn walk(stmts: &[Stmt], locals: &mut Vec<String>, out: &mut Vec<String>) {
        for s in stmts {
            match s {
                Stmt::Decl { name, .. } => locals.push(name.clone()),
                Stmt::Assign {
                    target: LValue::Index(n, _),
                    ..
                } if !locals.iter().any(|l| l == n) && !out.iter().any(|o| o == n) => {
                    out.push(n.clone());
                }
                Stmt::Foreach {
                    body,
                    value_var,
                    index_var,
                    ..
                } => {
                    let mut inner = locals.clone();
                    inner.push(value_var.clone());
                    if let Some(i) = index_var {
                        inner.push(i.clone());
                    }
                    walk(body, &mut inner, out);
                }
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    let mut t = locals.clone();
                    walk(then_branch, &mut t, out);
                    let mut e = locals.clone();
                    walk(else_branch, &mut e, out);
                }
                _ => {}
            }
        }
    }
    let mut locals = Vec::new();
    walk(stmts, &mut locals, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_and_arithmetic() {
        let p = compile("int x = 2 + 3; float y = 1.5 * 2.0;").unwrap();
        assert!(p.main.contains("swt:ibinop + "));
        assert!(p.main.contains("swt:fbinop * "));
        assert!(p.main.contains("turbine::store_integer"));
    }

    #[test]
    fn int_to_float_promotion() {
        let p = compile("int i = 2; float f = i * 1.5;").unwrap();
        assert!(p.main.contains("swt:itof"));
        assert!(p.main.contains("swt:fbinop *"));
    }

    #[test]
    fn comparison_yields_boolean() {
        compile("int a = 1; boolean b = a < 2;").unwrap();
        let err = compile("int a = 1; int b = a < 2; string s = b;").unwrap_err();
        assert!(err.message.contains("type mismatch"), "{}", err.message);
    }

    #[test]
    fn string_ops() {
        let p = compile(r#"string s = strcat("a", "b"); int n = strlen(s);"#).unwrap();
        assert!(p.main.contains("swt:strcat"));
        assert!(p.main.contains("swt:strlen"));
    }

    #[test]
    fn composite_function_emitted_as_proc() {
        let p = compile("(int o) add (int a, int b) { o = a + b; }\nint z = add(1, 2);").unwrap();
        assert!(p.preamble.contains("proc swift:add {p_o p_a p_b}"));
        assert!(p.main.contains("swift:add $"));
    }

    #[test]
    fn call_arity_checked() {
        let err = compile("(int o) f (int a) { o = a; }\nint z = f(1, 2);").unwrap_err();
        assert!(err.message.contains("takes 1 argument"), "{}", err.message);
    }

    #[test]
    fn discarded_outputs_rejected() {
        let err = compile("(int o) f (int a) { o = a; }\nf(1);").unwrap_err();
        assert!(err.message.contains("discards"), "{}", err.message);
    }

    #[test]
    fn foreach_range_generates_loop_proc() {
        let p = compile("foreach i in [0:9] { trace(i); }").unwrap();
        assert!(p.preamble.contains("proc swp:loop1 {__val __idx }"));
        assert!(p.main.contains("swt:range_foreach_deferred swp:loop1"));
    }

    #[test]
    fn foreach_captures_enclosing_vars() {
        let p =
            compile("int base = 10;\nforeach i in [0:3] { int y = i + base; trace(y); }").unwrap();
        // The loop proc takes the captured TD as a parameter.
        assert!(p.preamble.contains("proc swp:loop1 {__val __idx v_base_1}"));
        assert!(p.main.contains("[list $v_base_1]"));
    }

    #[test]
    fn foreach_array_write_reserves_slots() {
        let p = compile(
            "int A[];\nforeach i in [0:4] { A[i] = i * i; }\nforeach v, k in A { trace(k, v); }",
        )
        .unwrap();
        assert!(p.main.contains("turbine::write_refcount_incr $v_A_1 1"));
        assert!(p.main.contains("swt:array_foreach_go"));
        assert!(p.preamble.contains("swt:cinsert_when"));
        // Main closes its own slot at end of scope.
        assert!(p
            .main
            .trim_end()
            .ends_with("turbine::container_close $v_A_1"));
    }

    #[test]
    fn if_branches_become_procs() {
        let p = compile("int x = 1;\nif (x > 0) { printf(\"pos\"); } else { printf(\"neg\"); }")
            .unwrap();
        assert!(p.preamble.contains("proc swp:branch"));
        assert!(p.main.contains("swt:if $"));
    }

    #[test]
    fn leaf_template_generates_rule_and_task() {
        let p = compile(
            r#"
            (float o) scale (float x) [ "set <<o>> [expr {<<x>> * 2.0}]" ];
            float y = scale(1.5);
        "#,
        )
        .unwrap();
        assert!(p.preamble.contains("proc swift:scale {p_o p_x}"));
        assert!(p
            .preamble
            .contains("turbine::rule [list $p_x] \"swift:scale_task"));
        assert!(p.preamble.contains("turbine::retrieve_float $p_x"));
        assert!(p.preamble.contains("turbine::store_float $p_o $o"));
    }

    #[test]
    fn leaf_template_unknown_placeholder_rejected() {
        let err = compile(r#"(int o) f (int i) [ "set <<o>> <<mystery>>" ]; "#).unwrap_err();
        assert!(err.message.contains("placeholders"), "{}", err.message);
    }

    #[test]
    fn python_builtin() {
        let p = compile(r#"string s = python("x = 1", "x + 1"); trace(s);"#).unwrap();
        assert!(p.main.contains("swt:python"));
    }

    #[test]
    fn variable_copy_semantics() {
        let p = compile("int a = 1; int b; b = a;").unwrap();
        assert!(p.main.contains("swt:copy integer"));
    }

    #[test]
    fn shadowing_in_same_scope_rejected() {
        let err = compile("int x = 1; int x = 2;").unwrap_err();
        assert!(err.message.contains("already declared"));
    }

    #[test]
    fn free_var_analysis() {
        let prog = parser::parse(
            "int a = 1;\nforeach i in [0:2] { int b = a + i; if (b > 0) { trace(c); } }",
        )
        .unwrap();
        match &prog.main[1] {
            Stmt::Foreach { body, .. } => {
                let fv = free_vars(body, &["i".to_string()]);
                assert_eq!(fv, vec!["a", "c"]);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn containers_written_analysis() {
        let prog = parser::parse(
            "foreach i in [0:2] { A[i] = 1; int B[]; B[0] = 2; if (true) { C[0] = 3; } }",
        )
        .unwrap();
        match &prog.main[0] {
            Stmt::Foreach { body, .. } => {
                let w = containers_written(body);
                assert_eq!(w, vec!["A", "C"], "local B excluded");
            }
            _ => unreachable!(),
        }
    }
}

#[cfg(test)]
mod shadowing_tests {
    use super::*;

    #[test]
    fn user_function_shadows_builtin() {
        let p = compile(
            r#"
            (float o) sqrt (float x) { o = x * 2.0; }
            float y = sqrt(4.0);
            trace(y);
        "#,
        )
        .unwrap();
        assert!(p.main.contains("swift:sqrt"));
        assert!(!p.main.contains("swt:fmath sqrt"));
    }

    #[test]
    fn special_forms_cannot_be_redefined() {
        for name in ["printf", "trace", "assert", "strcat", "size", "argv"] {
            let src = format!("(int o) {name} (int x) {{ o = x; }}");
            let err = compile(&src).unwrap_err();
            assert!(err.message.contains("already defined"), "{name}: {err}");
        }
    }
}
