//! Tokenizer for the Swift subset.

#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Int(i64),
    Float(f64),
    Str(String),
    Ident(String),
    Kw(&'static str),
    Op(&'static str),
    /// `[ "template" ]` leaf bodies are lexed as ordinary brackets +
    /// strings; no special token needed.
    Eof,
}

/// A token with its source line (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub tok: Tok,
    pub line: usize,
}

const KEYWORDS: &[&str] = &[
    "int", "float", "string", "boolean", "void", "blob", "foreach", "in", "if", "else", "main",
    "true", "false", "app", "global", "import",
];

const OPS2: &[&str] = &["==", "!=", "<=", ">=", "&&", "||", "**", "=>"];
const OPS1: &[&str] = &[
    "+", "-", "*", "/", "%", "(", ")", "{", "}", "[", "]", ",", ";", ":", "=", "<", ">", "!", "@",
    ".",
];

/// Lexer error (unterminated string, bad character).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub message: String,
    pub line: usize,
}

pub fn tokenize(src: &str) -> Result<Vec<Spanned>, LexError> {
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'#' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                i += 2;
                while i + 1 < b.len() && !(b[i] == b'*' && b[i + 1] == b'/') {
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                if i + 1 >= b.len() {
                    return Err(LexError {
                        message: "unterminated block comment".into(),
                        line,
                    });
                }
                i += 2;
            }
            b'0'..=b'9' => {
                let start = i;
                let mut is_float = false;
                while i < b.len()
                    && (b[i].is_ascii_digit()
                        || b[i] == b'.'
                        || b[i] == b'e'
                        || b[i] == b'E'
                        || ((b[i] == b'+' || b[i] == b'-')
                            && i > start
                            && (b[i - 1] == b'e' || b[i - 1] == b'E')))
                {
                    // `[0:9]` must not lex `0:` as a float; '.' only counts
                    // when followed by a digit.
                    if b[i] == b'.' {
                        if b.get(i + 1).map(u8::is_ascii_digit) != Some(true) {
                            break;
                        }
                        is_float = true;
                    }
                    if b[i] == b'e' || b[i] == b'E' {
                        if !b
                            .get(i + 1)
                            .map(|d| d.is_ascii_digit() || *d == b'+' || *d == b'-')
                            .unwrap_or(false)
                        {
                            break;
                        }
                        is_float = true;
                    }
                    i += 1;
                }
                let text = &src[start..i];
                let tok = if is_float {
                    Tok::Float(text.parse().map_err(|_| LexError {
                        message: format!("bad float literal {text}"),
                        line,
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|_| LexError {
                        message: format!("bad int literal {text}"),
                        line,
                    })?)
                };
                out.push(Spanned { tok, line });
            }
            b'"' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= b.len() {
                        return Err(LexError {
                            message: "unterminated string literal".into(),
                            line,
                        });
                    }
                    match b[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' if i + 1 < b.len() => {
                            // Swift-level escapes; anything else keeps the
                            // backslash so Tcl escapes (including
                            // backslash-newline continuations) survive
                            // into leaf templates.
                            match b[i + 1] {
                                b'n' => {
                                    s.push('\n');
                                    i += 2;
                                }
                                b't' => {
                                    s.push('\t');
                                    i += 2;
                                }
                                b'\\' => {
                                    s.push('\\');
                                    i += 2;
                                }
                                b'"' => {
                                    s.push('"');
                                    i += 2;
                                }
                                other if other.is_ascii() => {
                                    s.push('\\');
                                    s.push(other as char);
                                    if other == b'\n' {
                                        line += 1;
                                    }
                                    i += 2;
                                }
                                _ => {
                                    // Multibyte char after the backslash:
                                    // keep both, consuming the whole char.
                                    s.push('\\');
                                    let ch = src[i + 1..].chars().next().unwrap();
                                    s.push(ch);
                                    i += 1 + ch.len_utf8();
                                }
                            }
                        }
                        b'\n' => {
                            s.push('\n');
                            line += 1;
                            i += 1;
                        }
                        _ => {
                            let ch = src[i..].chars().next().unwrap();
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                out.push(Spanned {
                    tok: Tok::Str(s),
                    line,
                });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                if let Some(kw) = KEYWORDS.iter().find(|k| **k == word) {
                    out.push(Spanned {
                        tok: Tok::Kw(kw),
                        line,
                    });
                } else {
                    out.push(Spanned {
                        tok: Tok::Ident(word.to_string()),
                        line,
                    });
                }
            }
            _ => {
                let rest = &src[i..];
                if let Some(op) = OPS2.iter().find(|o| rest.starts_with(**o)) {
                    out.push(Spanned {
                        tok: Tok::Op(op),
                        line,
                    });
                    i += 2;
                } else if let Some(op) = OPS1.iter().find(|o| rest.starts_with(**o)) {
                    out.push(Spanned {
                        tok: Tok::Op(op),
                        line,
                    });
                    i += 1;
                } else {
                    return Err(LexError {
                        message: format!("unexpected character {:?}", rest.chars().next().unwrap()),
                        line,
                    });
                }
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("int x = 5;"),
            vec![
                Tok::Kw("int"),
                Tok::Ident("x".into()),
                Tok::Op("="),
                Tok::Int(5),
                Tok::Op(";"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn range_does_not_eat_colon() {
        let t = toks("[0:9]");
        assert_eq!(
            t,
            vec![
                Tok::Op("["),
                Tok::Int(0),
                Tok::Op(":"),
                Tok::Int(9),
                Tok::Op("]"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn floats_and_scientific() {
        assert_eq!(toks("2.5")[0], Tok::Float(2.5));
        assert_eq!(toks("1e3")[0], Tok::Float(1000.0));
        assert_eq!(toks("7.")[0], Tok::Int(7)); // '.' not followed by digit
    }

    #[test]
    fn comments_all_styles() {
        let t = toks("1 // line\n2 # hash\n3 /* block\nmore */ 4");
        assert_eq!(
            t,
            vec![Tok::Int(1), Tok::Int(2), Tok::Int(3), Tok::Int(4), Tok::Eof]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(toks(r#""a\nb\"c""#)[0], Tok::Str("a\nb\"c".into()));
    }

    #[test]
    fn line_numbers_track() {
        let sp = tokenize("1\n2\n3").unwrap();
        assert_eq!(sp[0].line, 1);
        assert_eq!(sp[1].line, 2);
        assert_eq!(sp[2].line, 3);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("\"oops").is_err());
        assert!(tokenize("/* oops").is_err());
    }
}
