//! The compiler must never panic: arbitrary input produces Ok or a
//! CompileError with a line number, nothing else.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn compile_never_panics_on_arbitrary_input(src in ".{0,200}") {
        let _ = stc::compile(&src);
    }

    #[test]
    fn compile_never_panics_on_swifty_soup(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("int".to_string()), Just("float".to_string()),
                Just("foreach".to_string()), Just("if".to_string()),
                Just("else".to_string()), Just("in".to_string()),
                Just("x".to_string()), Just("f".to_string()),
                Just("=".to_string()), Just(";".to_string()),
                Just("(".to_string()), Just(")".to_string()),
                Just("{".to_string()), Just("}".to_string()),
                Just("[".to_string()), Just("]".to_string()),
                Just(":".to_string()), Just(",".to_string()),
                Just("+".to_string()), Just("1".to_string()),
                Just("\"s\"".to_string()), Just("2.5".to_string()),
            ],
            0..40,
        )
    ) {
        let src = tokens.join(" ");
        let _ = stc::compile(&src);
    }
}

#[test]
fn pathological_nesting_is_rejected_not_crashed() {
    // Deep parens.
    let mut src = String::from("int x = ");
    for _ in 0..200 {
        src.push('(');
    }
    src.push('1');
    for _ in 0..200 {
        src.push(')');
    }
    src.push(';');
    let _ = stc::compile(&src);

    // Unbalanced everything.
    assert!(stc::compile("((((((").is_err());
    assert!(stc::compile("foreach foreach foreach").is_err());
    assert!(stc::compile("int int int").is_err());
    assert!(stc::compile("\"unterminated").is_err());
}
