//! Quickstart: compile and run a Swift dataflow script on a simulated
//! distributed-memory machine.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! The program is the paper's Fig. 1 example (CLUSTER 2015, §II.A): ten
//! independent f→g pipelines that the runtime executes concurrently on
//! worker ranks, with the `if` statement firing only when its data is
//! ready.

use swiftt::core::Runtime;

const PROGRAM: &str = r#"
    // Leaf functions defined as inline Tcl templates (§III.A):
    (int o) f (int i) [ "set <<o>> [ expr {3 * <<i>> + 1} ]" ];
    (int o) g (int t) [ "set <<o>> [ expr {<<t>> % 4} ]" ];

    foreach i in [0:9] {
        int t = f(i);
        if (g(t) == 0) {
            printf("g(%i) == 0", t);
        }
    }
"#;

fn main() {
    // 8 ranks: 1 engine, 1 ADLB server, 6 workers.
    let machine = Runtime::new(8);
    let result = machine.run(PROGRAM).expect("program failed");

    println!("--- program output -------------------------");
    print!("{}", result.stdout);
    println!("--- run report ------------------------------");
    println!("leaf tasks executed : {}", result.total_tasks());
    println!("rules fired         : {}", result.total_rules_fired());
    println!("busy workers        : {}", result.busy_workers());
    println!("messages sent       : {}", result.messages);
    println!("wall time           : {:?}", result.elapsed);
}
