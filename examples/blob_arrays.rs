//! Bulk binary data: blobs and Fortran-order arrays through native code.
//!
//! ```sh
//! cargo run --example blob_arrays
//! ```
//!
//! §III.B of the paper: scientific users "desire to operate on bulk data
//! in arrays"; Swift/T ships them as **blobs** and `blobutils` bridges the
//! pointer-level complexities. Here a native "solver" library works on
//! f64 buffers and column-major matrices that flow through the dataflow
//! store as blobs — the script never copies an element through a string.

use blobutils::{Blob, FortranArray};
use swiftt::core::{NativeArg, NativeLibrary, Runtime};

fn main() {
    let solver = NativeLibrary::new("solver", "1.0")
        // Make an n-point sine wave sampled on [0, 2π).
        .function("wave", |args| {
            let n = args[0].as_i64()? as usize;
            let data: Vec<f64> = (0..n)
                .map(|i| (i as f64 / n as f64 * std::f64::consts::TAU).sin())
                .collect();
            Ok(NativeArg::Blob(Blob::from_f64s(&data)))
        })
        // Elementwise a*x + y (the BLAS axpy shape).
        .function("axpy", |args| {
            let a = args[0].as_f64()?;
            let x = args[1].as_blob()?.to_f64s().map_err(|e| e.to_string())?;
            let y = args[2].as_blob()?.to_f64s().map_err(|e| e.to_string())?;
            if x.len() != y.len() {
                return Err(format!("axpy length mismatch: {} vs {}", x.len(), y.len()));
            }
            let out: Vec<f64> = x.iter().zip(&y).map(|(xi, yi)| a * xi + yi).collect();
            Ok(NativeArg::Blob(Blob::from_f64s(&out)))
        })
        // L2 norm.
        .function("norm", |args| {
            let x = args[0].as_blob()?.to_f64s().map_err(|e| e.to_string())?;
            Ok(NativeArg::Float(
                x.iter().map(|v| v * v).sum::<f64>().sqrt(),
            ))
        })
        // Build the n×n circulant (periodic) 1-D Laplacian as a
        // self-describing Fortran array blob; sampled sines are its exact
        // eigenvectors.
        .function("laplacian", |args| {
            let n = args[0].as_i64()? as usize;
            let mut m = FortranArray::zeros(&[n, n]);
            for i in 0..n {
                m.set(&[i, i], 2.0).map_err(|e| e.to_string())?;
                let next = (i + 1) % n;
                m.set(&[next, i], -1.0).map_err(|e| e.to_string())?;
                m.set(&[i, next], -1.0).map_err(|e| e.to_string())?;
            }
            Ok(NativeArg::Blob(m.to_blob()))
        })
        // y = M · x for a Fortran-array blob and a plain f64 blob.
        .function("matvec", |args| {
            let m = FortranArray::from_blob(args[0].as_blob()?).map_err(|e| e.to_string())?;
            let x = args[1].as_blob()?.to_f64s().map_err(|e| e.to_string())?;
            let (rows, cols) = (m.dims()[0], m.dims()[1]);
            if cols != x.len() {
                return Err("matvec shape mismatch".into());
            }
            let mut y = vec![0.0; rows];
            for (j, xj) in x.iter().enumerate() {
                for (i, yi) in y.iter_mut().enumerate() {
                    *yi += m.get(&[i, j]).map_err(|e| e.to_string())? * xj;
                }
            }
            Ok(NativeArg::Blob(Blob::from_f64s(&y)))
        });

    let program = r#"
        (blob o) wave (int n) "solver" "1.0" [ "set <<o>> [ solver::wave <<n>> ]" ];
        (blob o) axpy (float a, blob x, blob y) "solver" "1.0" [
            "set <<o>> [ solver::axpy <<a>> <<x>> <<y>> ]"
        ];
        (float o) norm (blob x) "solver" "1.0" [ "set <<o>> [ solver::norm <<x>> ]" ];
        (blob o) laplacian (int n) "solver" "1.0" [ "set <<o>> [ solver::laplacian <<n>> ]" ];
        (blob o) matvec (blob m, blob x) "solver" "1.0" [
            "set <<o>> [ solver::matvec <<m>> <<x>> ]"
        ];

        int n = 256;

        // A little vector algebra, all flowing as blobs.
        blob w  = wave(n);
        blob w2 = axpy(2.0, w, w);        // 3·w
        float n1 = norm(w);
        float n2 = norm(w2);

        // Apply the periodic 1-D Laplacian to the wave: the sampled sine
        // is an exact eigenvector, so ||L·w|| / ||w|| equals the
        // eigenvalue 2 - 2·cos(2π/n).
        blob L  = laplacian(n);
        blob Lw = matvec(L, w);
        float nl = norm(Lw);

        printf("||w||  = %.4f", n1);
        printf("||3w|| = %.4f (expect 3x)", n2);
        printf("lambda ~= %.6f", nl / n1);
    "#;

    let result = Runtime::new(6)
        .native_library(solver)
        .run(program)
        .expect("program failed");

    println!("--- program output -------------------------");
    let mut lines: Vec<&str> = result.stdout.lines().collect();
    lines.sort();
    for l in lines {
        println!("{l}");
    }
    println!("--- run report ------------------------------");
    let expected = 2.0 - 2.0 * (std::f64::consts::TAU / 256.0).cos();
    println!("analytic eigenvalue : {expected:.6}");
    println!("leaf tasks executed : {}", result.total_tasks());
    println!("bytes moved         : {}", result.bytes);
    println!("wall time           : {:?}", result.elapsed);
}
