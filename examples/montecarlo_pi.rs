//! Monte Carlo π: native code + Swift dataflow + Tcl + R post-processing.
//!
//! ```sh
//! cargo run --example montecarlo_pi
//! ```
//!
//! This is the paper's development pattern (§I) in miniature:
//!
//! 1. a performance-critical sampling kernel in *native code* — a Rust
//!    function registered through the SWIG-analog [`NativeLibrary`]
//!    (Fig. 3 of the paper);
//! 2. coordination in *Swift* — a `foreach` fans the sampling out over
//!    workers, results gather in an array closed by slot counting;
//! 3. a tiny *Tcl* utility bridges the array to a CSV string (§III.A:
//!    "existing components built in Tcl can easily be brought into
//!    Swift");
//! 4. statistics in *R*, run in the embedded interpreter on a worker
//!    (§III.C) — no `exec`, no files.

use swiftt::core::{NativeArg, NativeLibrary, Runtime};

/// Count hits inside the unit circle for `n` SplitMix64-driven samples.
fn sample_hits(seed: u64, n: u64) -> u64 {
    // Seed scrambling constant must differ from the SplitMix64 gamma, or
    // adjacent seeds yield the same stream shifted by one step.
    let mut state = seed
        .wrapping_mul(0x243F6A8885A308D3)
        .wrapping_add(0x13198A2E03707344);
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let mut hits = 0;
    for _ in 0..n {
        let x = (next() >> 11) as f64 / (1u64 << 53) as f64;
        let y = (next() >> 11) as f64 / (1u64 << 53) as f64;
        if x * x + y * y <= 1.0 {
            hits += 1;
        }
    }
    hits
}

const CHUNKS: u64 = 32;
const SAMPLES_PER_CHUNK: u64 = 20_000;

fn main() {
    let mc = NativeLibrary::new("mc", "1.0").function("sample", |args| {
        let seed = args[0].as_i64()? as u64;
        let n = args[1].as_i64()? as u64;
        Ok(NativeArg::Int(sample_hits(seed, n) as i64))
    });

    let util_pkg = r#"
        proc swiftt_util::csv_of_container {c} {
            return [join [turbine::container_values $c] ","]
        }
    "#;

    let program = format!(
        r#"
        // Native kernel (Fig. 3 path: native fn -> Tcl binding -> Swift).
        (int hits) sample (int seed, int n) "mc" "1.0" [
            "set <<hits>> [ mc::sample <<seed>> <<n>> ]"
        ];
        // Tcl component: array (by container id) -> CSV string.
        (string o) array_csv (int a[]) "swiftt_util" "1.0" [
            "set <<o>> [ swiftt_util::csv_of_container <<a>> ]"
        ];

        int hits[];
        foreach i in [1:{chunks}] {{
            hits[i] = sample(i, {per});
        }}

        string csv = array_csv(hits);
        string stats = r(strcat(
            "hits <- c(", csv, ")
n_total <- {chunks} * {per}
pi_hat <- 4 * sum(hits) / n_total
se <- 4 * sd(hits / {per}) / sqrt({chunks})"),
            "paste(round(pi_hat, 5), round(se, 5))");

        printf("pi_hat, se = %s", stats);
    "#,
        chunks = CHUNKS,
        per = SAMPLES_PER_CHUNK,
    );

    let machine = Runtime::new(10)
        .native_library(mc)
        .tcl_package("swiftt_util", "1.0", util_pkg);
    let result = machine.run(&program).expect("program failed");

    println!("--- program output -------------------------");
    print!("{}", result.stdout);
    println!("--- run report ------------------------------");
    println!("samples             : {}", CHUNKS * SAMPLES_PER_CHUNK);
    println!("leaf tasks executed : {}", result.total_tasks());
    println!("busy workers        : {}", result.busy_workers());
    println!("wall time           : {:?}", result.elapsed);
}
