//! A many-task analysis pipeline: Python simulation, R statistics, Tcl
//! report formatting — the paper's "protein analysis / materials science"
//! shape (§I): a sweep of simulations post-processed per configuration.
//!
//! ```sh
//! cargo run --example stats_pipeline
//! ```
//!
//! Each parameter point runs three leaf tasks chained by dataflow:
//!
//! * `simulate` (Python): a deterministic pseudo-energy trajectory;
//! * `analyze` (R): mean / sd / min of the trajectory;
//! * `report` (Tcl template): one formatted report line.
//!
//! All interpreter work happens *in process* on the workers (§III.C) —
//! nothing is exec'd, nothing touches a filesystem.

use swiftt::core::Runtime;

const PROGRAM: &str = r#"
    // Python leaf: simulate a relaxation trajectory for one temperature.
    // The code block is *braced* so Tcl treats it literally (Python's
    // brackets would otherwise be command substitutions); the input value
    // is injected with [string map], the standard Tcl templating idiom.
    (string o) simulate (int temp) [
        "set code [string map [list @T@ <<temp>>] {t = @T@
vals = []
e = 100.0 + t
for step in range(40):
    e = e * 0.9 + 0.1 * t
    vals.append(round(e, 4))
parts = []
for v in vals:
    parts.append(str(v))
csv = ','.join(parts)}]
         set <<o>> [ python $code {csv} ]"
    ];

    // R leaf: summary statistics of the trajectory.
    (string o) analyze (string csv) [
        "set code [string map [list @CSV@ <<csv>>] {e <- c(@CSV@)
m <- round(mean(e), 2)
s <- round(sd(e), 2)
lo <- round(min(e), 2)}]
         set <<o>> [ r $code {paste(m, s, lo)} ]"
    ];

    // Tcl leaf: format the report line.
    (string o) report (int temp, string stats) [
        "lassign <<stats>> m s lo
         set <<o>> [format {T=%-3d mean=%-7s sd=%-6s min=%s} <<temp>> $m $s $lo]"
    ];

    foreach t in [10:14] {
        string traj  = simulate(t);
        string stats = analyze(traj);
        string line  = report(t, stats);
        printf("%s", line);
    }
"#;

fn main() {
    let result = Runtime::new(8).run(PROGRAM).expect("pipeline failed");

    println!("--- sweep report (one line per temperature) --");
    let mut lines: Vec<&str> = result.stdout.lines().collect();
    lines.sort();
    for l in lines {
        println!("{l}");
    }
    println!("----------------------------------------------");
    println!("leaf tasks executed : {}", result.total_tasks());
    println!("busy workers        : {}", result.busy_workers());
    println!("wall time           : {:?}", result.elapsed);
}
