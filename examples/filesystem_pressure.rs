//! Why embed interpreters at all? The filesystem numbers.
//!
//! ```sh
//! cargo run --example filesystem_pressure
//! ```
//!
//! This example reproduces, interactively, the paper's two filesystem
//! arguments (§III.C and §IV) against the simulated parallel filesystem:
//!
//! 1. exec'ing an interpreter per task hammers the metadata server —
//!    the cost grows linearly with ranks × tasks, and the *queue wait*
//!    quadratically;
//! 2. loading script packages as trees of small files does the same at
//!    job start, which "static packages" reduce to one read per rank —
//!    and the in-memory packages this runtime uses reduce to zero.
//!
//! Everything here is deterministic simulated time: run it anywhere and
//! get the same table.

use std::sync::Arc;

use pfs::{Pfs, PfsConfig};

const RANKS: &[usize] = &[32, 128, 512, 2048];

fn main() {
    println!("simulated parallel filesystem: 1 metadata server (50 us/op),");
    println!("8 data servers (500 MB/s each), 100 us client RTT\n");

    // --- scenario 1: exec-per-task vs embedded -------------------------
    println!("scenario 1: one Python task per rank, four tasks each");
    println!(
        "{:<8} {:>16} {:>16} {:>8}",
        "ranks", "exec (sim ms)", "embedded (ms)", "ratio"
    );
    for &ranks in RANKS {
        // exec path: interpreter + 40 module opens per task.
        let fs = Arc::new(Pfs::new(PfsConfig::default()));
        let mut admin = fs.client();
        admin.put("/sw/python", &vec![0u8; 4 << 20]).unwrap();
        for m in 0..40 {
            admin.put(&format!("/sw/lib/mod{m}.py"), b"module").unwrap();
        }
        let mut exec_ms = 0u64;
        for _ in 0..ranks {
            let mut c = fs.client();
            for _ in 0..4 {
                for m in 0..40 {
                    c.open(&format!("/sw/lib/mod{m}.py")).unwrap();
                }
                c.read("/sw/python").unwrap();
            }
            exec_ms = exec_ms.max(c.now());
        }

        // embedded path: one package image read per rank, ever.
        let fs = Arc::new(Pfs::new(PfsConfig::default()));
        let mut admin = fs.client();
        admin.put("/sw/bundle", &vec![0u8; 1 << 20]).unwrap();
        let mut embed_ms = 0u64;
        for _ in 0..ranks {
            let mut c = fs.client();
            c.read("/sw/bundle").unwrap();
            embed_ms = embed_ms.max(c.now());
        }
        println!(
            "{:<8} {:>16.1} {:>16.1} {:>7.1}x",
            ranks,
            exec_ms as f64 / 1e6,
            embed_ms as f64 / 1e6,
            exec_ms as f64 / embed_ms as f64
        );
    }

    // --- scenario 2: package trees vs static bundles --------------------
    println!();
    println!("scenario 2: job startup, 60-file Tcl package tree per rank");
    println!(
        "{:<8} {:>16} {:>16} {:>12}",
        "ranks", "tree (sim ms)", "bundle (ms)", "md ops saved"
    );
    for &ranks in RANKS {
        let fs = Arc::new(Pfs::new(PfsConfig::default()));
        let mut admin = fs.client();
        for i in 0..60 {
            admin
                .put(&format!("/pkg/f{i}.tcl"), &vec![0u8; 2000])
                .unwrap();
        }
        let mut tree_ms = 0u64;
        for _ in 0..ranks {
            let mut c = fs.client();
            c.readdir("/pkg/");
            for i in 0..60 {
                c.read(&format!("/pkg/f{i}.tcl")).unwrap();
            }
            tree_ms = tree_ms.max(c.now());
        }
        let tree_ops = fs.stats().metadata_ops;

        let fs = Arc::new(Pfs::new(PfsConfig::default()));
        let mut admin = fs.client();
        admin.put("/pkg.bundle", &vec![0u8; 60 * 2000]).unwrap();
        let mut bundle_ms = 0u64;
        for _ in 0..ranks {
            let mut c = fs.client();
            c.read("/pkg.bundle").unwrap();
            bundle_ms = bundle_ms.max(c.now());
        }
        let bundle_ops = fs.stats().metadata_ops;
        println!(
            "{:<8} {:>16.1} {:>16.1} {:>12}",
            ranks,
            tree_ms as f64 / 1e6,
            bundle_ms as f64 / 1e6,
            tree_ops - bundle_ops
        );
    }

    println!();
    println!("the in-memory packages this runtime uses (Interp::add_package)");
    println!("perform zero filesystem operations — the limit of the static-");
    println!("package idea the paper describes in section IV.");
}
