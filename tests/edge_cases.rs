//! Edge cases across the stack: empty iterations, error propagation from
//! every leaf kind, main-block sugar, scale smoke.

use swiftt::core::{Runtime, SwiftTError};

#[test]
fn empty_range_foreach_completes() {
    // end < start: zero iterations, and the container reservation
    // bookkeeping must still release cleanly.
    let r = Runtime::new(4)
        .run(
            r#"
            int A[];
            foreach i in [5:2] {
                A[i] = i;
            }
            trace(size(A));
        "#,
        )
        .unwrap();
    assert_eq!(r.stdout, "trace: 0\n");
}

#[test]
fn empty_array_foreach_completes() {
    let r = Runtime::new(4)
        .run(
            r#"
            int A[];
            foreach v, k in A {
                trace(v);
            }
            trace(size(A));
        "#,
        )
        .unwrap();
    assert_eq!(r.stdout, "trace: 0\n");
}

#[test]
fn single_iteration_range() {
    let r = Runtime::new(4)
        .run("foreach i in [7:7] { trace(i); }")
        .unwrap();
    assert_eq!(r.stdout, "trace: 7\n");
}

#[test]
fn main_block_sugar_runs() {
    let r = Runtime::new(3)
        .run("main { printf(\"from main\"); }")
        .unwrap();
    assert_eq!(r.stdout, "from main\n");
}

#[test]
fn failing_shell_command_is_an_error() {
    let err = Runtime::new(3)
        .run(r#"string x = sh("exit 3"); trace(x);"#)
        .unwrap_err();
    match err {
        SwiftTError::Runtime(m) => {
            assert!(
                m.contains("exited abnormally") || m.contains("child"),
                "{m}"
            )
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn r_error_propagates_with_r_flavor() {
    let err = Runtime::new(3)
        .run(r#"string x = r("", "nonexistent_function(1)"); trace(x);"#)
        .unwrap_err();
    match err {
        SwiftTError::Runtime(m) => {
            assert!(m.contains("could not find function"), "{m}")
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn tcl_leaf_error_propagates() {
    let err = Runtime::new(3)
        .run(
            r#"
            (int o) bad (int i) [ "error {template exploded}" ];
            int x = bad(1);
            trace(x);
        "#,
        )
        .unwrap_err();
    match err {
        SwiftTError::Runtime(m) => assert!(m.contains("template exploded"), "{m}"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn native_error_propagates() {
    use swiftt::core::NativeLibrary;
    let lib = NativeLibrary::new("n", "1.0").function("die", |_| Err("native sadness".into()));
    let err = Runtime::new(3)
        .native_library(lib)
        .run(
            r#"
            (int o) die (int i) "n" "1.0" [ "set <<o>> [ n::die <<i>> ]" ];
            trace(die(1));
        "#,
        )
        .unwrap_err();
    match err {
        SwiftTError::Runtime(m) => assert!(m.contains("native sadness"), "{m}"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn zero_statement_program() {
    let r = Runtime::new(3).run("// nothing but a comment\n").unwrap();
    assert_eq!(r.stdout, "");
    assert_eq!(r.total_tasks(), 0);
}

#[test]
fn thousand_task_smoke() {
    let r = Runtime::new(20)
        .servers(2)
        .run(
            r#"
            (int o) bump (int i) [ "set <<o>> [ expr {<<i>> + 1} ]" ];
            int done[];
            foreach i in [1:1000] {
                done[i] = bump(i);
            }
            printf("%d", size(done));
        "#,
        )
        .unwrap();
    assert_eq!(r.stdout, "1000\n");
    assert_eq!(r.total_tasks(), 1001); // 1000 bumps + printf
    assert!(r.busy_workers() >= 8);
}

#[test]
fn negative_numbers_and_unary_minus() {
    let r = Runtime::new(4)
        .run(
            r#"
            int a = -5;
            int b = -a;
            float f = -2.5;
            float g = -f;
            printf("%d %d %.1f %.1f", a, b, f, g);
        "#,
        )
        .unwrap();
    assert_eq!(r.stdout, "-5 5 -2.5 2.5\n");
}

#[test]
fn comments_everywhere() {
    let r = Runtime::new(3)
        .run(
            r#"
            // line comment
            # hash comment
            /* block
               comment */
            int x = 1; // trailing
            trace(x);
        "#,
        )
        .unwrap();
    assert_eq!(r.stdout, "trace: 1\n");
}

#[test]
fn boolean_used_as_int_in_arithmetic() {
    let r = Runtime::new(4)
        .run(
            r#"
            boolean b = 3 < 5;
            int sum = b + 10;
            trace(sum);
        "#,
        )
        .unwrap();
    assert_eq!(r.stdout, "trace: 11\n");
}
