//! Swift language semantics, end to end: every construct the compiler
//! supports, executed on a real simulated machine.

use swiftt::core::{Runtime, SwiftTError};

fn run(src: &str) -> String {
    Runtime::new(4).run(src).unwrap().stdout
}

#[test]
fn arithmetic_and_formatting() {
    let out = run(r#"
        int a = 7;
        int b = a * 6;
        float x = 1.5;
        float y = x * x + 0.25;
        printf("b=%d y=%.2f", b, y);
    "#);
    assert_eq!(out, "b=42 y=2.50\n");
}

#[test]
fn integer_division_and_modulo() {
    let out = run(r#"
        int q = 17 / 5;
        int m = 17 % 5;
        printf("%d r %d", q, m);
    "#);
    assert_eq!(out, "3 r 2\n");
}

#[test]
fn int_float_promotion() {
    let out = run(r#"
        int n = 3;
        float h = n / 2.0;
        printf("%.1f", h);
    "#);
    assert_eq!(out, "1.5\n");
}

#[test]
fn booleans_and_logic() {
    let out = run(r#"
        boolean p = 3 < 5;
        boolean q = 2 == 3;
        if (p && !q) { printf("logic ok"); } else { printf("logic broken"); }
    "#);
    assert_eq!(out, "logic ok\n");
}

#[test]
fn string_operations() {
    let out = run(r#"
        string a = "data";
        string b = strcat(a, "flow");
        int n = strlen(b);
        printf("%s has %d chars", b, n);
    "#);
    assert_eq!(out, "dataflow has 8 chars\n");
}

#[test]
fn string_comparison() {
    let out = run(r#"
        string a = "x";
        if (a == "x") { printf("eq"); } else { printf("ne"); }
    "#);
    assert_eq!(out, "eq\n");
}

#[test]
fn conversions() {
    let out = run(r#"
        int i = toint("41");
        string s = fromint(i + 1);
        float f = tofloat("2.5");
        printf("%s %.1f", s, f);
    "#);
    assert_eq!(out, "42 2.5\n");
}

#[test]
fn float_math_builtins() {
    let out = run(r#"
        float r = sqrt(144.0);
        float e = exp(0.0);
        printf("%.1f %.1f", r, e);
    "#);
    assert_eq!(out, "12.0 1.0\n");
}

#[test]
fn composite_functions_compose() {
    let out = run(r#"
        (int o) square (int x) { o = x * x; }
        (int o) add (int a, int b) { o = a + b; }
        int z = add(square(3), square(4));
        printf("%d", z);
    "#);
    assert_eq!(out, "25\n");
}

#[test]
fn composite_function_with_locals() {
    let out = run(r#"
        (float o) poly (float x) {
            float x2 = x * x;
            float x3 = x2 * x;
            o = x3 - 2.0 * x2 + 1.0;
        }
        printf("%.1f", poly(3.0));
    "#);
    assert_eq!(out, "10.0\n");
}

#[test]
fn arrays_fill_and_reduce() {
    let out = run(r#"
        int A[];
        foreach i in [0:9] {
            A[i] = i * i;
        }
        int n = size(A);
        printf("n=%d", n);
    "#);
    assert_eq!(out, "n=10\n");
}

#[test]
fn array_foreach_reads_values_and_indices() {
    let out = run(r#"
        int A[];
        A[3] = 30;
        A[1] = 10;
        foreach v, k in A {
            printf("A[%d]=%d", k, v);
        }
    "#);
    let mut lines: Vec<&str> = out.lines().collect();
    lines.sort();
    assert_eq!(lines, vec!["A[1]=10", "A[3]=30"]);
}

#[test]
fn array_element_read() {
    let out = run(r#"
        int A[];
        A[0] = 5;
        A[1] = 7;
        int x = A[0] + A[1];
        printf("%d", x);
    "#);
    assert_eq!(out, "12\n");
}

#[test]
fn nested_foreach() {
    let out = run(r#"
        foreach i in [1:3] {
            foreach j in [1:3] {
                if (i == j) { printf("%d", i * j); }
            }
        }
    "#);
    let mut nums: Vec<i64> = out.lines().map(|l| l.parse().unwrap()).collect();
    nums.sort();
    assert_eq!(nums, vec![1, 4, 9]);
}

#[test]
fn if_else_chains() {
    let out = run(r#"
        (string o) classify (int x) {
            if (x < 0) { o = "neg"; }
            else if (x == 0) { o = "zero"; }
            else { o = "pos"; }
        }
        printf("%s %s %s", classify(0 - 5), classify(0), classify(5));
    "#);
    assert_eq!(out, "neg zero pos\n");
}

#[test]
fn foreach_over_computed_range() {
    let out = run(r#"
        int lo = 2;
        int hi = lo * 2;
        foreach i in [lo:hi] { printf("%d", i); }
    "#);
    let mut nums: Vec<i64> = out.lines().map(|l| l.parse().unwrap()).collect();
    nums.sort();
    assert_eq!(nums, vec![2, 3, 4]);
}

#[test]
fn loop_carried_reduction_via_array() {
    // Swift has no mutable accumulators; reductions go through arrays.
    let out = run(r#"
        int parts[];
        foreach i in [1:20] {
            parts[i] = i;
        }
        int total = size(parts);
        printf("%d", total);
    "#);
    assert_eq!(out, "20\n");
}

#[test]
fn trace_builtin() {
    let out = run("trace(1, 2.5, \"three\");");
    assert_eq!(out, "trace: 1,2.5,three\n");
}

#[test]
fn assert_passing() {
    let out = run(r#"
        assert(2 + 2 == 4, "arithmetic works");
        printf("done");
    "#);
    assert_eq!(out, "done\n");
}

#[test]
fn double_assignment_is_caught_at_runtime() {
    // Single assignment is the language's core invariant; a second store
    // is a dataflow violation detected by the data store.
    let err = Runtime::new(3)
        .run(
            r#"
            int x;
            x = 1;
            x = 2;
        "#,
        )
        .unwrap_err();
    match err {
        SwiftTError::Runtime(m) => assert!(m.contains("double assignment"), "{m}"),
        other => panic!("expected runtime error, got {other:?}"),
    }
}

#[test]
fn compile_error_reports_line() {
    let err = Runtime::new(3)
        .run("int a = 1;\nint b = c + 1;\n")
        .unwrap_err();
    match err {
        SwiftTError::Compile(e) => {
            assert_eq!(e.line, 2);
            assert!(e.message.contains("undefined variable \"c\""));
        }
        other => panic!("expected compile error, got {other:?}"),
    }
}

#[test]
fn deep_dependency_chain() {
    // A 30-deep chain of futures exercises cascading notifications.
    let mut src = String::from("int x0 = 1;\n");
    for i in 1..30 {
        src.push_str(&format!("int x{i} = x{} + 1;\n", i - 1));
    }
    src.push_str("printf(\"%d\", x29);\n");
    let out = run(&src);
    assert_eq!(out, "30\n");
}

#[test]
fn many_independent_statements() {
    let mut src = String::new();
    for i in 0..50 {
        src.push_str(&format!("int a{i} = {i} * 2;\n"));
    }
    for i in 0..50 {
        src.push_str(&format!("trace(a{i});\n"));
    }
    let out = Runtime::new(6).run(&src).unwrap().stdout;
    assert_eq!(out.lines().count(), 50);
}

#[test]
fn extended_math_builtins() {
    let out = run(r#"
        float p = pow(2.0, 10.0);
        float h = hypot(3.0, 4.0);
        float rr = round(2.6);
        float af = abs_float(0.0 - 4.5);
        int ai = abs_int(0 - 42);
        int mx = max_int(3, 9);
        int mn = min_int(3, 9);
        printf("%.0f %.0f %.0f %.1f %d %d %d", p, h, rr, af, ai, mx, mn);
    "#);
    assert_eq!(out, "1024 5 3 4.5 42 9 3\n");
}

#[test]
fn printf_with_hostile_format_strings() {
    // Braces, quotes, dollars, and brackets in the *format* must survive
    // being shipped as a task through the load balancer.
    let out = run(r#"
        printf("braces {not code} ok");
        printf("dollar $notavar ok");
        printf("bracket [notacmd] ok");
        printf("quote \" ok");
    "#);
    let mut lines: Vec<&str> = out.lines().collect();
    lines.sort();
    assert_eq!(
        lines,
        vec![
            "braces {not code} ok",
            "bracket [notacmd] ok",
            "dollar $notavar ok",
            "quote \" ok",
        ]
    );
}

#[test]
fn string_arrays_with_awkward_values() {
    let out = run(r#"
        string words[];
        words[0] = "plain";
        words[1] = "two words";
        words[2] = "with {braces}";
        foreach w, k in words {
            printf("%d=%s", k, w);
        }
    "#);
    let mut lines: Vec<&str> = out.lines().collect();
    lines.sort();
    assert_eq!(lines, vec!["0=plain", "1=two words", "2=with {braces}"]);
}

#[test]
fn float_arrays() {
    let out = run(r#"
        float xs[];
        foreach i in [0:4] {
            xs[i] = itof(i) * 0.5;
        }
        foreach v, k in xs {
            if (k == 3) { printf("%.1f", v); }
        }
    "#);
    assert_eq!(out, "1.5\n");
}
