//! Integration tests for the `swiftt` command-line launcher.

use std::process::Command;

fn swiftt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_swiftt"))
}

#[test]
fn expr_runs_and_prints() {
    let out = swiftt()
        .args(["--expr", r#"printf("answer %d", 6 * 7);"#])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout), "answer 42\n");
}

#[test]
fn script_file_with_args_and_report() {
    let dir = std::env::temp_dir().join("swiftt_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("prog.swift");
    std::fs::write(
        &path,
        r#"
        int n = toint(argv("n"));
        foreach i in [1:n] { trace(i); }
    "#,
    )
    .unwrap();
    let out = swiftt()
        .args(["-n", "5", "--arg", "n=3", "--report"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.lines().count(), 3);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("swiftt report"));
    assert!(stderr.contains("leaf tasks"));
}

#[test]
fn emit_tcl_prints_turbine_code() {
    let out = swiftt()
        .args(["--emit-tcl", "--expr", "int x = 1 + 2; trace(x);"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("swt:ibinop + "));
    assert!(stdout.contains("---- main ----"));
}

#[test]
fn compile_error_sets_exit_code() {
    let out = swiftt().args(["--expr", "int x = nope;"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("undefined"), "{stderr}");
}

#[test]
fn runtime_error_sets_exit_code() {
    let out = swiftt()
        .args(["--expr", r#"assert(false, "boom");"#])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("boom"));
}

#[test]
fn unknown_flag_usage() {
    let out = swiftt().args(["--frobnicate"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn nonsense_shape_exits_2_with_config_error() {
    // All servers, no client ranks: rejected by the runtime's up-front
    // config validation, mapped to the usage exit code.
    let out = swiftt()
        .args(["-n", "4", "-s", "4", "--expr", r#"printf("x");"#])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("configuration error"), "{stderr}");

    let out = swiftt()
        .args([
            "-n",
            "6",
            "-s",
            "2",
            "--replication",
            "3",
            "--expr",
            r#"printf("x");"#,
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("replication"), "{stderr}");
}

#[test]
fn tenants_share_a_world_and_report_rows() {
    let dir = std::env::temp_dir().join("swiftt_cli_tenants");
    std::fs::create_dir_all(&dir).unwrap();
    let a = dir.join("a.swift");
    let b = dir.join("b.swift");
    std::fs::write(&a, r#"foreach i in [1:4] { printf("aa"); }"#).unwrap();
    std::fs::write(&b, r#"foreach i in [1:2] { printf("bb"); }"#).unwrap();

    let out = swiftt()
        .args([
            "-n",
            "7",
            "--report",
            "--tenant",
            &format!("alpha:2:{}", a.display()),
            "--tenant",
            &format!("beta:1:{}", b.display()),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Tenant outputs are concatenated in tenant order, each matching what
    // the program prints solo.
    assert_eq!(stdout, "aa\naa\naa\naa\nbb\nbb\n");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--- tenants ---"), "{stderr}");
    assert!(stderr.contains("alpha"), "{stderr}");
    assert!(stderr.contains("beta"), "{stderr}");
}

#[test]
fn tenant_and_script_are_mutually_exclusive() {
    let out = swiftt()
        .args(["--tenant", "a:1:/dev/null", "--expr", r#"printf("x");"#])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("not both"));
}

#[test]
fn verify_checkpoint_cli_round_trip() {
    let dir = std::env::temp_dir().join("swiftt_cli_fsck");
    std::fs::create_dir_all(&dir).unwrap();
    let image = dir.join("ckpt.img");
    let _ = std::fs::remove_file(&image);

    // Produce a checkpoint image, then fsck it offline.
    let out = swiftt()
        .args([
            "-n",
            "5",
            "--checkpoint",
            "1",
            "--checkpoint-file",
            image.to_str().unwrap(),
            "--expr",
            r#"foreach i in [1:6] { printf("line"); }"#,
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = swiftt()
        .args(["--verify-checkpoint", image.to_str().unwrap()])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("clean"), "{stdout}");

    // A missing image is an I/O error (usage exit), not "corrupt".
    let out = swiftt()
        .args(["--verify-checkpoint", "/nonexistent/ckpt.img"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}
