//! Integration tests for the `swiftt` command-line launcher.

use std::process::Command;

fn swiftt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_swiftt"))
}

#[test]
fn expr_runs_and_prints() {
    let out = swiftt()
        .args(["--expr", r#"printf("answer %d", 6 * 7);"#])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout), "answer 42\n");
}

#[test]
fn script_file_with_args_and_report() {
    let dir = std::env::temp_dir().join("swiftt_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("prog.swift");
    std::fs::write(
        &path,
        r#"
        int n = toint(argv("n"));
        foreach i in [1:n] { trace(i); }
    "#,
    )
    .unwrap();
    let out = swiftt()
        .args(["-n", "5", "--arg", "n=3", "--report"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.lines().count(), 3);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("swiftt report"));
    assert!(stderr.contains("leaf tasks"));
}

#[test]
fn emit_tcl_prints_turbine_code() {
    let out = swiftt()
        .args(["--emit-tcl", "--expr", "int x = 1 + 2; trace(x);"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("swt:ibinop + "));
    assert!(stdout.contains("---- main ----"));
}

#[test]
fn compile_error_sets_exit_code() {
    let out = swiftt().args(["--expr", "int x = nope;"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("undefined"), "{stderr}");
}

#[test]
fn runtime_error_sets_exit_code() {
    let out = swiftt()
        .args(["--expr", r#"assert(false, "boom");"#])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("boom"));
}

#[test]
fn unknown_flag_usage() {
    let out = swiftt().args(["--frobnicate"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}
