//! Multi-tenant end-to-end: N Swift programs sharing one simulated
//! machine, with weighted fair scheduling and admission quotas.
//!
//! The acceptance bar from the tenant-subsystem issue:
//!
//! * per-tenant output byte-identical to running each program solo;
//! * delivered-task shares within 15% of the configured weights under
//!   sustained contention;
//! * a quota-capped flooding tenant sees its puts rejected (counted in
//!   the report) without degrading a neighbor's p95 task latency by more
//!   than 2x;
//! * one tenant's program failure is contained to its report.

use swiftt::core::{Runtime, SwiftTError, TenantQuota};

/// A program that prints `name` exactly `n` times, as `n` independent
/// leaf tasks. Every line is identical, so its stdout is deterministic
/// (byte-identical across runs and machine shapes) no matter which
/// workers execute the tasks or in what order.
fn spam(name: &str, n: usize) -> String {
    format!(
        r#"
        foreach i in [0:{}] {{
            printf("{}");
        }}
        "#,
        n - 1,
        name
    )
}

/// Like [`spam`], but each leaf task also spins `spin` Tcl loop
/// iterations before printing. Engines submit much faster than workers
/// can evaluate these, so the server-side queues stay backlogged — the
/// contended regime where fair-share scheduling and admission quotas are
/// actually exercised. Output stays deterministic: `n` identical lines.
fn slow_spam(name: &str, n: usize, spin: usize) -> String {
    format!(
        r#"
        (int o) slowline (int x) [ "for {{set k 0}} {{$k < {spin}}} {{incr k}} {{}}; puts {name}; set <<o>> <<x>>" ];
        foreach i in [0:{}] {{
            int v = slowline(i);
        }}
        "#,
        n - 1
    )
}

#[test]
fn four_tenants_match_solo_output_and_weighted_shares() {
    // Task counts proportional to the weights keep every tenant
    // backlogged for (roughly) the whole run, which is the regime where
    // DRR shares are measurable.
    let jobs: &[(&str, u32, usize)] = &[
        ("whale", 4, 240),
        ("shark", 2, 120),
        ("crab", 1, 60),
        ("krill", 1, 60),
    ];

    let mut rt = Runtime::new(8).servers(1);
    for (name, weight, n) in jobs {
        rt = rt.submit(*name, *weight, None, slow_spam(name, *n, 800));
    }
    let r = rt.run_tenants().unwrap();
    assert_eq!(r.tenants.len(), 4);

    // Byte-identical per-tenant output vs a solo run of the same source.
    for (i, (name, _, n)) in jobs.iter().enumerate() {
        let solo = Runtime::new(4)
            .run(&slow_spam(name, *n, 800))
            .unwrap()
            .stdout;
        let t = r.tenant(i as u32).unwrap();
        assert_eq!(t.name, *name);
        assert_eq!(
            t.stdout, solo,
            "tenant {name} output differs from its solo run"
        );
        assert!(t.error.is_none(), "tenant {name} failed: {:?}", t.error);
    }
    // The run-level stdout is the tenant-order concatenation.
    let concat: String = r.tenants.iter().map(|t| t.stdout.as_str()).collect();
    assert_eq!(r.stdout, concat);

    // Delivered shares track the weights. Only contended deliveries
    // count (when one tenant has the queues to itself, fairness is
    // undefined), and the 15% tolerance is relative to each weight.
    let total_weight: u32 = jobs.iter().map(|(_, w, _)| *w).sum();
    let contended: u64 = r.tenants.iter().map(|t| t.stats.delivered_contended).sum();
    assert!(
        contended >= 100,
        "not enough contended deliveries ({contended}) to measure shares"
    );
    for (i, (name, weight, _)) in jobs.iter().enumerate() {
        let t = r.tenant(i as u32).unwrap();
        let share = t
            .share_of_delivered
            .expect("contended run must report shares");
        let expected = *weight as f64 / total_weight as f64;
        assert!(
            (share - expected).abs() <= 0.15 * expected,
            "tenant {name}: share {share:.3} vs expected {expected:.3} (weight {weight})"
        );
    }
}

#[test]
fn quota_capped_flood_is_rejected_without_starving_neighbors() {
    // Slow leaf tasks make the worker pool the bottleneck: the flooding
    // engine submits far faster than its share drains, so its queue hits
    // the cap and puts bounce. The steady program is identical between
    // the solo baseline and the shared run, so the p95 comparison
    // isolates the flood's effect.
    let steady = slow_spam("steady", 80, 800);
    let flood = slow_spam("flood", 300, 800);

    // Baseline: the steady program running as the only tenant.
    let solo = Runtime::new(6)
        .servers(1)
        .tracing(true)
        .submit("steady", 4, None, steady.clone())
        .run_tenants()
        .unwrap();
    let solo_p95 = solo
        .tenant(0)
        .unwrap()
        .latency
        .expect("traced run has task latency")
        .p95_us;

    // Same program beside a flooding tenant whose queue is capped.
    let quota = TenantQuota {
        max_queued: Some(8),
        max_leases: None,
    };
    let r = Runtime::new(6)
        .servers(1)
        .tracing(true)
        .submit("steady", 4, None, steady)
        .submit("flood", 1, Some(quota), flood)
        .run_tenants()
        .unwrap();

    let fl = r.tenant(1).unwrap();
    assert!(
        fl.stats.rejected > 0,
        "flooding tenant should have had puts NACKed (stats: {:?})",
        fl.stats
    );
    // Backpressure, not loss: every flood line still comes out.
    assert_eq!(fl.stdout.lines().count(), 300);

    let st = r.tenant(0).unwrap();
    assert!(st.error.is_none());
    assert_eq!(st.stdout.lines().count(), 80);
    let shared_p95 = st.latency.expect("traced run has task latency").p95_us;
    // The quota + 4:1 weight split must keep the neighbor's tail latency
    // within 2x of its solo tail (small additive slack absorbs scheduler
    // noise on loaded CI machines).
    assert!(
        shared_p95 <= 2 * solo_p95 + 2_000,
        "steady p95 degraded from {solo_p95}us solo to {shared_p95}us beside the flood"
    );
}

#[test]
fn tenant_failure_is_contained_to_its_report() {
    let r = Runtime::new(6)
        .servers(1)
        .submit(
            "broken",
            1,
            None,
            "assert(1 == 2, \"tenant zero is broken\");",
        )
        .submit("healthy", 1, None, spam("healthy", 20))
        .run_tenants()
        .unwrap();
    let broken = r.tenant(0).unwrap();
    let healthy = r.tenant(1).unwrap();
    assert!(
        broken
            .error
            .as_deref()
            .is_some_and(|e| e.contains("tenant zero is broken")),
        "expected contained assertion failure, got {:?}",
        broken.error
    );
    assert!(healthy.error.is_none());
    assert_eq!(healthy.stdout.lines().count(), 20);
}

#[test]
fn nonsense_configs_are_rejected_up_front() {
    let config_err = |r: Result<swiftt::core::RunResult, SwiftTError>| match r {
        Err(SwiftTError::Config(m)) => m,
        other => panic!("expected a config error, got {other:?}"),
    };

    // Replication beyond the server count.
    let m = config_err(
        Runtime::new(6)
            .servers(2)
            .replication(3)
            .run("printf(\"x\");"),
    );
    assert!(m.contains("replication"), "{m}");

    // Server count that leaves no clients.
    let m = config_err(Runtime::new(4).servers(4).run("printf(\"x\");"));
    assert!(m.contains("server"), "{m}");

    // No workers left after engines + servers.
    let m = config_err(Runtime::new(4).servers(1).engines(3).run("printf(\"x\");"));
    assert!(m.contains("worker"), "{m}");

    // Resume without the checkpoint tier.
    let m = config_err(Runtime::new(4).resume(true).run("printf(\"x\");"));
    assert!(m.contains("resume"), "{m}");

    // A tenant quota that could never admit or deliver anything.
    let q = TenantQuota {
        max_queued: Some(0),
        max_leases: None,
    };
    let m = config_err(
        Runtime::new(5)
            .submit("t", 1, Some(q), "printf(\"x\");")
            .run_tenants(),
    );
    assert!(m.contains("max_queued"), "{m}");

    // run_tenants with nothing submitted.
    let m = config_err(Runtime::new(5).run_tenants());
    assert!(m.contains("submit"), "{m}");
}
