//! End-to-end fault tolerance: rank kills, message delays, and poison
//! tasks injected into full Swift programs running through the whole
//! stack (stc → turbine → adlb → mpisim).
//!
//! The invariant under test is the one argued in
//! `crates/adlb/tests/stress.rs`: a task's execution happens strictly
//! between the receive that delivered it and the acknowledgement the
//! next `get()` piggybacks, so a rank death either requeues an
//! unexecuted lease (runs elsewhere) or lands after the ack (never
//! reruns). At this level we observe it as: the run terminates, and no
//! surviving rank's output contains a duplicated task.

use std::process::Command;
use std::sync::Arc;

use swiftt::core::{FaultPlan, Runtime, SwiftTError};
use swiftt::pfs::{Pfs, PfsConfig};

/// Sorted, deduplicated stdout lines (a killed rank's buffered output is
/// lost with it, so survivors' lines are what we can assert about).
fn unique_lines(stdout: &str) -> Vec<&str> {
    let mut lines: Vec<&str> = stdout.lines().collect();
    let before = lines.len();
    lines.sort_unstable();
    lines.dedup();
    assert_eq!(lines.len(), before, "duplicate output lines: {lines:?}");
    lines
}

#[test]
fn early_worker_death_loses_no_tasks() {
    // Rank layout for new(6): engine 0, workers 1..=4, server 5. Kill
    // worker 2 at its very first receive: it has executed nothing, so
    // every task must surface from the survivors.
    let plan = FaultPlan::new().kill_after_recvs(2, 0);
    let r = Runtime::new(6)
        .faults(plan)
        .run(r#"foreach i in [0:19] { printf("task %d", i); }"#)
        .expect("run must survive the dead worker");
    assert_eq!(r.killed_ranks, vec![2]);
    assert_eq!(r.server_totals().ranks_failed, 1);
    assert_eq!(
        unique_lines(&r.stdout).len(),
        20,
        "all 20 tasks ran on survivors"
    );
}

#[test]
fn mid_run_worker_death_terminates_without_duplicates() {
    // Kill worker 3 midway through its task stream. Its executed tasks'
    // output was streamed to the server tier before each subsequent get
    // (and their acks flushed before the receive the kill lands on), so
    // nothing it did is lost OR rerun: the assembled stdout holds all 40
    // tasks exactly once even though the rank died.
    let plan = FaultPlan::new().kill_after_recvs(3, 12);
    let r = Runtime::new(6)
        .faults(plan)
        .run(r#"foreach i in [0:39] { printf("task %d", i); }"#)
        .expect("run must survive a mid-run worker death");
    assert!(
        r.killed_ranks.is_empty() || r.killed_ranks == vec![3],
        "only the scheduled victim may die: {:?}",
        r.killed_ranks
    );
    let lines = unique_lines(&r.stdout);
    assert_eq!(
        lines.len(),
        40,
        "streamed output recovers the dead rank's executed tasks"
    );
    if !r.killed_ranks.is_empty() {
        // The server tier cannot know the victim's last words arrived;
        // its stream is conservatively flagged as possibly-truncated.
        assert_eq!(r.truncated_streams, vec![3]);
    }
}

#[test]
fn worker_death_with_batch_in_flight_loses_no_tasks() {
    // Batching is on by default, so a worker's first Get asks for a whole
    // batch. Kill worker 2 right after that Get is delivered: whatever
    // the server leased to it (up to a full prefetch batch) is in flight
    // to a dead rank and must be requeued — every task surfaces from the
    // survivors exactly once.
    let plan = FaultPlan::new().kill_after_sends(2, 1);
    let r = Runtime::new(6)
        .faults(plan)
        .run(r#"foreach i in [0:39] { printf("task %d", i); }"#)
        .expect("run must survive the dead worker");
    assert_eq!(r.killed_ranks, vec![2]);
    assert_eq!(r.server_totals().ranks_failed, 1);
    assert_eq!(
        unique_lines(&r.stdout).len(),
        40,
        "victim executed nothing; all 40 tasks ran once on survivors"
    );
}

#[test]
fn batching_ablation_produces_identical_results() {
    // The E5 ablation knob: the same program under the batched pipeline
    // and under the PR 1 one-task-per-round-trip protocol must produce
    // the same task set.
    let src = r#"foreach i in [0:19] { printf("task %d", i); }"#;
    let batched = Runtime::new(5).run(src).expect("batched run");
    let unbatched = Runtime::new(5)
        .batching(false)
        .run(src)
        .expect("unbatched run");
    let mut a = unique_lines(&batched.stdout);
    let mut b = unique_lines(&unbatched.stdout);
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a.len(), 20);
    assert_eq!(a, b, "batching must not change program output");
}

#[test]
fn delayed_messages_do_not_break_exactly_once() {
    // Delays reorder nothing (delivery is still per-pair FIFO) but
    // stretch the schedule; the run must still produce every task once.
    let plan = FaultPlan::new()
        .delay_nth(1, 4, 2, 30)
        .delay_nth(2, 4, 3, 20);
    let r = Runtime::new(5)
        .faults(plan)
        .run(r#"foreach i in [0:19] { printf("task %d", i); }"#)
        .expect("delays must not break the run");
    assert!(r.killed_ranks.is_empty());
    assert_eq!(unique_lines(&r.stdout).len(), 20);
}

#[test]
fn poison_task_quarantined_with_bounded_retries() {
    // A task that fails deterministically (NameError in the embedded
    // Python) is retried to the configured budget, quarantined, and the
    // worker keeps running — so the machine shuts down cleanly and the
    // engine diagnoses the unfilled future instead of a rank crashing.
    let err = Runtime::new(4)
        .max_retries(1)
        .run(
            r#"
            string x = python("", "name_that_is_not_defined");
            printf("never: %s", x);
        "#,
        )
        .unwrap_err();
    match err {
        SwiftTError::Runtime(m) => {
            assert!(m.contains("deadlock"), "expected dataflow deadlock: {m}");
            assert!(
                m.contains("quarantined after 2 attempts"),
                "budget of 1 retry = 2 attempts: {m}"
            );
            assert!(
                m.contains("name_that_is_not_defined"),
                "original task error must surface: {m}"
            );
        }
        other => panic!("expected a runtime error, got {other:?}"),
    }
}

/// Rank layout for new(8).servers(2): engine 0, workers 1..=5, servers
/// 6 (master) and 7. Run the same 120-task program fault-free and with
/// one server killed mid-run at replication 2; the output task set must
/// be identical (worker scheduling makes line *order* nondeterministic,
/// so we compare sorted lines).
fn assert_server_death_output_matches(victim: usize, kill_recvs: u64) {
    let src = r#"foreach i in [0:119] { printf("task %d", i); }"#;
    let clean = Runtime::new(8)
        .servers(2)
        .replication(2)
        .run(src)
        .expect("fault-free run");
    let mut want: Vec<&str> = clean.stdout.lines().collect();
    want.sort_unstable();

    let plan = FaultPlan::new().kill_after_recvs(victim, kill_recvs);
    let r = Runtime::new(8)
        .servers(2)
        .replication(2)
        .faults(plan)
        .run(src)
        .unwrap_or_else(|e| {
            panic!("killing server {victim} at recv {kill_recvs} must not fail the run: {e}")
        });
    assert_eq!(
        r.killed_ranks,
        vec![victim],
        "the scheduled server victim must die"
    );
    assert_eq!(r.server_totals().failovers, 1, "a successor promoted");
    let mut got = unique_lines(&r.stdout);
    got.sort_unstable();
    assert_eq!(
        got, want,
        "output after a server death must match the fault-free run"
    );
    assert!(
        r.truncated_streams.is_empty(),
        "no worker died, so no stream may be truncated: {:?}",
        r.truncated_streams
    );
}

#[test]
fn master_server_death_at_replication_2_output_matches_fault_free() {
    // Rank 6 is the master (first server on the ring): its successor
    // takes over the shard, the adopted clients, AND the termination
    // protocol.
    for kill_recvs in [10, 40] {
        assert_server_death_output_matches(6, kill_recvs);
    }
}

#[test]
fn second_server_death_at_replication_2_output_matches_fault_free() {
    for kill_recvs in [10, 40] {
        assert_server_death_output_matches(7, kill_recvs);
    }
}

#[test]
fn server_death_at_replication_1_fails_cleanly_not_hangs() {
    // The same death schedule with replication disabled: the shard is
    // lost, so the run cannot complete — but it must end in a clean,
    // attributable error (the shard-loss diagnosis), never a hang.
    // checkpoint(0) pins the tier off even under SWIFTT_CHECKPOINT=on
    // (the CI fault matrix): this test is *about* the no-durability path.
    let plan = FaultPlan::new().kill_after_recvs(7, 10);
    let err = Runtime::new(8)
        .servers(2)
        .replication(1)
        .checkpoint(0)
        .faults(plan)
        .run(r#"foreach i in [0:119] { printf("task %d", i); }"#)
        .expect_err("an unreplicated shard loss cannot complete the program");
    match err {
        SwiftTError::Runtime(m) => {
            assert!(
                m.contains("unrecoverable"),
                "error must carry the shard-loss diagnosis: {m}"
            );
            assert!(
                m.contains("server rank 7"),
                "diagnosis must name the lost shard's home: {m}"
            );
            assert!(
                m.contains("no checkpoint configured"),
                "diagnosis must say why nothing durable could help: {m}"
            );
        }
        other => panic!("expected a runtime error, got {other:?}"),
    }
}

/// Rank layout for new(12).servers(4): engine 0, workers 1..=7, servers
/// 8..=11 (master 8). Kill two servers sequentially with a gap wide
/// enough that re-replication restores R between the deaths: after rank
/// 9 dies, its successor 10 merges the shard and streams fresh replica
/// state to the recomputed successors; by the time rank 11 dies the ring
/// is back at R=2, so the second failover is just as survivable as the
/// first. Victims 9 and 11 promote onto 10 and (wrapping) 8, so both
/// failover counters live on survivors and stay visible in the totals.
#[test]
fn two_sequential_server_deaths_with_re_replication_complete_the_program() {
    let src = r#"foreach i in [0:299] { printf("task %d", i); }"#;
    let clean = Runtime::new(12)
        .servers(4)
        .replication(2)
        .run(src)
        .expect("fault-free run");
    let mut want: Vec<&str> = clean.stdout.lines().collect();
    want.sort_unstable();

    let plan = FaultPlan::new()
        .kill_after_recvs(9, 10)
        .kill_after_recvs(11, 50);
    let r = Runtime::new(12)
        .servers(4)
        .replication(2)
        .re_replication(true)
        .faults(plan)
        .run(src)
        .expect("both deaths land after R was restored, so the run must complete");
    assert_eq!(
        r.killed_ranks,
        vec![9, 11],
        "both scheduled server victims must die"
    );
    let totals = r.server_totals();
    assert_eq!(totals.failovers, 2, "each victim's successor promoted");
    assert!(totals.repl_syncs > 0, "re-replication streams completed");
    assert!(totals.repl_sync_bytes > 0, "sync streams carried state");
    assert!(
        totals.r_restore_micros > 0,
        "time-to-R-restored was measured"
    );
    let mut got = unique_lines(&r.stdout);
    got.sort_unstable();
    assert_eq!(
        got, want,
        "output after two sequential server deaths must match the fault-free run"
    );
    assert!(
        r.truncated_streams.is_empty(),
        "no worker died, so no stream may be truncated: {:?}",
        r.truncated_streams
    );
}

/// The same double-death schedule with re-replication disabled: R is
/// never restored after the first death, so the second death strands a
/// shard whose only fresh copy died with its holder. The run must end in
/// a clean, attributable error — never a hang — unless it won the race
/// and finished before the second death mattered.
#[test]
fn two_sequential_server_deaths_without_re_replication_end_cleanly() {
    let plan = FaultPlan::new()
        .kill_after_recvs(9, 10)
        .kill_after_recvs(11, 50);
    let r = Runtime::new(12)
        .servers(4)
        .replication(2)
        .re_replication(false)
        .faults(plan)
        .run(r#"foreach i in [0:299] { printf("task %d", i); }"#);
    match r {
        Ok(r) => {
            // Completed before the loss bit: output must still be clean.
            unique_lines(&r.stdout);
        }
        Err(SwiftTError::Runtime(m)) => assert!(
            m.contains("unrecoverable"),
            "error must carry the shard-loss diagnosis: {m}"
        ),
        Err(other) => panic!("expected a runtime error, got {other:?}"),
    }
}

#[test]
fn server_death_at_replication_1_with_checkpoint_completes() {
    // The same schedule that is unrecoverable above, with the durable
    // tier on: the successor restores the dead server's shard from its
    // pfs checkpoint (there is no RAM replica at replication 1), and the
    // run completes with the fault-free output.
    let src = r#"foreach i in [0:119] { printf("task %d", i); }"#;
    let clean = Runtime::new(8)
        .servers(2)
        .replication(1)
        .run(src)
        .expect("fault-free run");
    let mut want: Vec<&str> = clean.stdout.lines().collect();
    want.sort_unstable();

    let plan = FaultPlan::new().kill_after_recvs(7, 10);
    let r = Runtime::new(8)
        .servers(2)
        .replication(1)
        .checkpoint(8)
        .faults(plan)
        .run(src)
        .expect("the pfs checkpoint must make the unreplicated shard recoverable");
    assert_eq!(r.killed_ranks, vec![7]);
    let totals = r.server_totals();
    assert!(totals.pfs_restores >= 1, "the shard came back from pfs");
    assert!(totals.ckpt_records > 0, "the WAL was written");
    let mut got = unique_lines(&r.stdout);
    got.sort_unstable();
    assert_eq!(
        got, want,
        "output after a pfs restore must match the fault-free run"
    );
}

/// Rank layout for new(12).servers(4): servers 8..=11. Kill 9, then 10 —
/// with re-replication off, 10 holds the only RAM copy of the shard it
/// subsumed from 9, so 10's death loses every in-memory holder of that
/// shard. The durable tier must bring it back: 10's forced post-promotion
/// segment covers both homes, and the redirect tombstone left for 9
/// points the restorer at it.
#[test]
fn kill_all_shard_holders_restores_from_pfs_checkpoint() {
    let src = r#"foreach i in [0:299] { printf("task %d", i); }"#;
    let clean = Runtime::new(12)
        .servers(4)
        .replication(2)
        .run(src)
        .expect("fault-free run");
    let mut want: Vec<&str> = clean.stdout.lines().collect();
    want.sort_unstable();

    let plan = FaultPlan::new()
        .kill_after_recvs(9, 10)
        .kill_after_recvs(10, 80);
    let r = Runtime::new(12)
        .servers(4)
        .replication(2)
        .re_replication(false)
        .checkpoint(16)
        .faults(plan)
        .run(src)
        .expect("losing every RAM holder must fall back to the pfs checkpoint");
    assert_eq!(r.killed_ranks, vec![9, 10], "both scheduled victims died");
    let totals = r.server_totals();
    // Rank 10's own failover count (for subsuming rank 9) died with it;
    // survivor totals only see rank 11's restore-and-promote.
    assert!(totals.failovers >= 1, "the survivor failed over the shard");
    assert!(
        totals.pfs_restores >= 1,
        "at least the second failover had no RAM replica and restored from pfs"
    );
    let mut got = unique_lines(&r.stdout);
    got.sort_unstable();
    assert_eq!(
        got, want,
        "output after a total-holder loss must match the fault-free run"
    );
}

/// Whole-world restartability: kill the entire server tier mid-run (the
/// clients then crash out on "all servers are dead" — the whole world is
/// gone), then relaunch the same program with `resume` against the same
/// checkpoint store. The restarted clients replay their request streams
/// from seq 1; requests at or below each shard's durable high-water are
/// answered byte-for-byte from the recorded response history (forcing the
/// same execution path, so the full program output reappears), and
/// everything past it runs fresh against the restored shards —
/// exactly-once server effects across the two runs.
#[test]
fn whole_world_kill_then_resume_completes_exactly_once() {
    let src = r#"foreach i in [0:59] { printf("task %d", i); }"#;
    let clean = Runtime::new(6).run(src).expect("fault-free run");
    let mut want: Vec<&str> = clean.stdout.lines().collect();
    want.sort_unstable();
    assert_eq!(want.len(), 60);

    let fs = Arc::new(Pfs::new(PfsConfig::default()));
    // Run 1: the lone server (rank 5) dies mid-stream; every client then
    // panics out on total server loss. The world is gone.
    let r1 = Runtime::new(6)
        .checkpoint(4)
        .checkpoint_store(fs.clone())
        .faults(FaultPlan::new().kill_after_recvs(5, 60))
        .run(src);
    match r1 {
        Err(SwiftTError::Runtime(m)) => assert!(
            m.contains("servers are dead"),
            "run 1 must crash out on total server loss: {m}"
        ),
        other => panic!("expected the whole world to go down, got {other:?}"),
    }
    let baseline = Arc::new(Pfs::new(PfsConfig::default())).dump().len();
    assert!(
        fs.dump().len() > baseline,
        "run 1 left durable checkpoint state behind"
    );

    // Run 2: same program, same store, resume. No faults.
    let r2 = Runtime::new(6)
        .checkpoint(4)
        .checkpoint_store(fs.clone())
        .resume(true)
        .run(src)
        .expect("the resumed world must complete");
    assert!(r2.killed_ranks.is_empty());
    assert!(
        r2.server_totals().pfs_restores >= 1,
        "the server restored its shard before serving"
    );
    let mut got = unique_lines(&r2.stdout);
    got.sort_unstable();
    assert_eq!(
        got, want,
        "the resumed run must produce the complete output, each task exactly once"
    );
}

#[test]
fn cli_faults_flag_reports_counters() {
    let out = Command::new(env!("CARGO_BIN_EXE_swiftt"))
        .args([
            "--expr",
            r#"foreach i in [0:9] { printf("t%d", i); }"#,
            "-n",
            "6",
            "--faults",
            "kill:rank=2,recvs=0",
            "--max-retries",
            "5",
            "--report",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.lines().count(), 10, "all tasks ran on survivors");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("killed ranks       : [2]"), "{stderr}");
    assert!(stderr.contains("ranks failed (srv) : 1"), "{stderr}");
}

#[test]
fn cli_replication_flag_survives_server_death() {
    let out = Command::new(env!("CARGO_BIN_EXE_swiftt"))
        .args([
            "--expr",
            r#"foreach i in [0:99] { printf("t%d", i); }"#,
            "-n",
            "8",
            "-s",
            "2",
            "--replication",
            "2",
            "--faults",
            "kill:rank=7,recvs=10",
            "--report",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        stdout.lines().count(),
        100,
        "all tasks ran despite the dead server"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("killed ranks       : [7]"), "{stderr}");
    assert!(stderr.contains("server failovers   : 1"), "{stderr}");
    assert!(stderr.contains("replication ops    : "), "{stderr}");
}

#[test]
fn cli_report_shows_re_replication_metrics() {
    let out = Command::new(env!("CARGO_BIN_EXE_swiftt"))
        .args([
            "--expr",
            r#"foreach i in [0:149] { printf("t%d", i); }"#,
            "-n",
            "12",
            "-s",
            "4",
            "--replication",
            "2",
            "--faults",
            "kill:rank=9,recvs=10",
            "--report",
        ])
        // Pin the default on: the CI fault matrix sweeps this env knob,
        // and this test is about the metrics re-replication produces.
        .env("SWIFTT_REREPLICATION", "1")
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.lines().count(), 150, "all tasks ran on survivors");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("killed ranks       : [9]"), "{stderr}");
    assert!(stderr.contains("re-replicated bytes: "), "{stderr}");
    assert!(stderr.contains("time-to-R-restored : "), "{stderr}");
}

#[test]
fn cli_no_re_replication_flag_disables_syncs() {
    // One server death at replication 2 still completes (the replica
    // promotes), but with re-replication off no sync streams run, so the
    // report must not show sync metrics.
    let out = Command::new(env!("CARGO_BIN_EXE_swiftt"))
        .args([
            "--expr",
            r#"foreach i in [0:99] { printf("t%d", i); }"#,
            "-n",
            "12",
            "-s",
            "4",
            "--replication",
            "2",
            "--no-re-replication",
            "--faults",
            "kill:rank=9,recvs=10",
            "--report",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.lines().count(), 100, "all tasks ran on survivors");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("server failovers   : 1"), "{stderr}");
    assert!(!stderr.contains("re-replicated bytes"), "{stderr}");
    assert!(!stderr.contains("time-to-R-restored"), "{stderr}");
}

#[test]
fn cli_rejects_replication_above_server_count() {
    let out = Command::new(env!("CARGO_BIN_EXE_swiftt"))
        .args(["--expr", "trace(1);", "-s", "1", "--replication", "2"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("replication"), "{stderr}");
    assert!(stderr.contains("configuration error"), "{stderr}");
}

#[test]
fn cli_checkpoint_file_resumes_across_processes() {
    // Process 1 loses its whole server tier mid-run (the world goes down
    // with it) but persists the checkpoint store image; process 2 resumes
    // from the image and must print the complete task set exactly once.
    let img = std::env::temp_dir().join(format!(
        "swiftt-ckpt-{}-{}.img",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    let img_path = img.to_str().unwrap();
    let expr = r#"foreach i in [0:39] { printf("t%d", i); }"#;
    let out1 = Command::new(env!("CARGO_BIN_EXE_swiftt"))
        .args([
            "--expr",
            expr,
            "-n",
            "6",
            "--checkpoint",
            "4",
            "--checkpoint-file",
            img_path,
            "--faults",
            "kill:rank=5,recvs=60",
        ])
        .output()
        .unwrap();
    assert!(
        !out1.status.success(),
        "total server loss must fail the first process: {out1:?}"
    );
    let stderr1 = String::from_utf8_lossy(&out1.stderr);
    assert!(stderr1.contains("servers are dead"), "{stderr1}");
    assert!(
        std::fs::metadata(img_path).is_ok_and(|m| m.len() > 0),
        "process 1 must write the checkpoint image even though it crashed"
    );

    let out2 = Command::new(env!("CARGO_BIN_EXE_swiftt"))
        .args([
            "--expr",
            expr,
            "-n",
            "6",
            "--resume",
            "--checkpoint-file",
            img_path,
            "--report",
        ])
        .output()
        .unwrap();
    let _ = std::fs::remove_file(img_path);
    assert!(out2.status.success(), "{out2:?}");
    let stdout = String::from_utf8_lossy(&out2.stdout);
    let mut lines: Vec<&str> = stdout.lines().collect();
    let before = lines.len();
    lines.sort_unstable();
    lines.dedup();
    assert_eq!(lines.len(), before, "duplicate output lines: {lines:?}");
    assert_eq!(lines.len(), 40, "the resumed process printed every task");
    let stderr = String::from_utf8_lossy(&out2.stderr);
    assert!(stderr.contains("pfs restores       : "), "{stderr}");
}

#[test]
fn cli_rejects_malformed_fault_spec() {
    let out = Command::new(env!("CARGO_BIN_EXE_swiftt"))
        .args(["--expr", "trace(1);", "--faults", "explode:everything"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--faults"), "{stderr}");
}
