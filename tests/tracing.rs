//! Task-lifecycle tracing as a test oracle.
//!
//! The trace is not just a debugging artifact: span counts must
//! *reconcile* with the runtime's independent counters (tasks executed,
//! rules fired, failovers), both fault-free and under fault injection —
//! a drift between the two means either the instrumentation or the
//! counter is lying. Latency percentiles carry their own structural
//! invariant: a task's queue wait (accept → deliver) is a prefix of its
//! latency (accept → ack) stamped by the same server clock, so queue-wait
//! order statistics can never exceed task-latency order statistics.

use std::process::Command;

use mpisim::trace;
use swiftt::core::{FaultPlan, Runtime};

const PROGRAM: &str = r#"foreach i in [0:39] { printf("task %d", i); }"#;

#[test]
fn untraced_run_records_nothing() {
    let r = Runtime::new(5).run(PROGRAM).expect("run");
    assert!(r.traces.is_empty(), "tracing off must record no events");
    assert!(r.latency.is_none());
    assert_eq!(r.total_tasks(), 40);
}

#[test]
fn trace_reconciles_with_counters_fault_free() {
    let r = Runtime::new(6).tracing(true).run(PROGRAM).expect("run");
    assert_eq!(r.traces.len(), 6, "one trace per rank");
    assert_eq!(
        trace::count_kind(&r.traces, trace::KIND_TASK_EVAL),
        r.total_tasks(),
        "one eval span per executed task"
    );
    assert_eq!(
        trace::count_kind(&r.traces, trace::KIND_RULE_FIRE),
        r.total_rules_fired(),
        "one rule_fire span per fired rule"
    );
    assert_eq!(trace::count_kind(&r.traces, trace::KIND_FAILOVER), 0);
    assert_eq!(
        trace::count_kind(&r.traces, trace::KIND_FAILOVER_RECOVERY),
        0
    );
    // Every span is non-inverted even though ranks run on distinct clocks.
    for t in &r.traces {
        for e in &t.events {
            assert!(e.end_us >= e.start_us, "inverted span: {e:?}");
        }
    }
}

#[test]
fn histogram_sanity_queue_wait_below_task_latency() {
    let r = Runtime::new(6).tracing(true).run(PROGRAM).expect("run");
    let lat = r.latency.expect("traced run has a latency report");
    let task = lat.task_latency.expect("task latency recorded");
    let queue = lat.queue_wait.expect("queue wait recorded");
    assert_eq!(
        task.count, queue.count,
        "fault free, every delivered task is acked exactly once"
    );
    // Latency spans cover every delivered task — leaf *and* control-plane
    // (loop-split rules run on engines) — so the count dominates the
    // leaf-task counter.
    assert!(
        task.count >= r.total_tasks(),
        "{} < {}",
        task.count,
        r.total_tasks()
    );
    // Pointwise queue ≤ latency per task ⇒ the k-th order statistics
    // dominate ⇒ every percentile dominates.
    assert!(queue.p50_us <= task.p50_us, "{queue:?} vs {task:?}");
    assert!(queue.p95_us <= task.p95_us, "{queue:?} vs {task:?}");
    assert!(queue.p99_us <= task.p99_us, "{queue:?} vs {task:?}");
    assert!(queue.max_us <= task.max_us, "{queue:?} vs {task:?}");
    let eval = lat.eval_time.expect("eval time recorded");
    assert_eq!(eval.count, r.total_tasks());
}

#[test]
fn trace_reconciles_under_server_death() {
    // Rank layout for new(12).servers(4): engine 0, workers 1..=7,
    // servers 8..=11 (master 8). Kill the master mid-run: the trace must
    // still reconcile — eval spans count every executed task (including
    // requeued leases' reruns), the promotion shows up as exactly one
    // failover instant, and the re-replication that restores R records
    // one recovery window iff the stats say R was restored.
    let plan = FaultPlan::new().kill_after_recvs(8, 10);
    let r = Runtime::new(12)
        .servers(4)
        .replication(2)
        .tracing(true)
        .faults(plan)
        .run(r#"foreach i in [0:79] { printf("task %d", i); }"#)
        .expect("run survives the dead server");
    assert_eq!(r.killed_ranks, vec![8]);
    let totals = r.server_totals();
    assert_eq!(totals.failovers, 1);
    assert_eq!(
        trace::count_kind(&r.traces, trace::KIND_TASK_EVAL),
        r.total_tasks(),
        "eval spans reconcile under fault injection"
    );
    assert_eq!(
        trace::count_kind(&r.traces, trace::KIND_FAILOVER),
        totals.failovers,
        "one failover instant per promotion"
    );
    // Ring recompute can oblige several survivors to re-replicate (the
    // promoted server's adopted shard AND shards whose replica lived on
    // the victim), so the exact oracle is per-server: one recovery span
    // per server that reports a completed restore.
    let restored_servers = r
        .outputs
        .iter()
        .filter_map(|o| o.server_stats.as_ref())
        .filter(|s| s.r_restore_micros > 0)
        .count() as u64;
    assert!(restored_servers >= 1, "re-replication must have completed");
    assert_eq!(
        trace::count_kind(&r.traces, trace::KIND_FAILOVER_RECOVERY),
        restored_servers,
        "one recovery window per server that restored R"
    );
    let rec = r
        .latency
        .expect("latency report")
        .failover_recovery
        .expect("recovery window measured");
    assert_eq!(rec.count, restored_servers);
    // The dead master's partial trace survives: it accepted tasks before
    // dying, so its rank slot must hold recorded events.
    assert!(
        !r.traces[8].events.is_empty(),
        "killed rank's partial trace must be preserved"
    );
}

#[test]
fn chrome_export_spans_match_task_count() {
    let r = Runtime::new(5).tracing(true).run(PROGRAM).expect("run");
    let dir = std::env::temp_dir().join(format!("swiftt-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("out.json");
    r.write_trace(&path).expect("write trace");
    let body = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert!(body.starts_with("{\"traceEvents\":["));
    assert!(body.trim_end().ends_with("]}"));
    assert_eq!(
        body.matches('{').count(),
        body.matches('}').count(),
        "balanced braces ⇒ structurally sound JSON for this writer"
    );
    // Rank timelines are labeled with their role.
    assert!(body.contains("rank 0 (engine)"));
    assert!(body.contains("(worker)"));
    assert!(body.contains("(server)"));
    let eval_spans = body.matches("\"name\":\"task_eval\"").count() as u64;
    assert_eq!(
        eval_spans,
        r.total_tasks(),
        "exported eval spans equal the executed-task count"
    );
}

#[test]
fn cli_trace_and_report_percentiles() {
    let dir = std::env::temp_dir().join(format!("swiftt-cli-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("trace.json");
    let out = Command::new(env!("CARGO_BIN_EXE_swiftt"))
        .args([
            "--expr",
            r#"foreach i in [0:29] { printf("t%d", i); }"#,
            "-n",
            "6",
            "--report",
            "--trace",
            trace_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.lines().count(), 30, "all tasks ran");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("task latency       : p50 "), "{stderr}");
    assert!(stderr.contains("queue wait         : p50 "), "{stderr}");
    assert!(stderr.contains("eval time          : p50 "), "{stderr}");
    let body = std::fs::read_to_string(&trace_path).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert!(body.starts_with("{\"traceEvents\":["));
    assert_eq!(
        body.matches("\"name\":\"task_eval\"").count(),
        30,
        "one exported eval span per task"
    );
}
