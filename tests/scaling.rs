//! Runtime-architecture tests (Fig. 2 / F2, E5 correctness side): the
//! engine/server/worker split at various shapes, multiple servers,
//! multiple engines, work stealing on and off — all must produce the same
//! program results.

use swiftt::core::Runtime;

/// A bag of independent leaf tasks with recognizable output.
fn task_bag(n: usize) -> String {
    format!(
        r#"
        (int o) work (int i) [ "set <<o>> [ expr {{<<i>> * <<i>>}} ]" ];
        foreach i in [1:{n}] {{
            int s = work(i);
            trace(s);
        }}
    "#
    )
}

fn squares_from(stdout: &str) -> Vec<i64> {
    let mut v: Vec<i64> = stdout
        .lines()
        .map(|l| l.trim_start_matches("trace: ").parse().unwrap())
        .collect();
    v.sort();
    v
}

fn expected_squares(n: i64) -> Vec<i64> {
    let mut v: Vec<i64> = (1..=n).map(|i| i * i).collect();
    v.sort();
    v
}

#[test]
fn one_server_many_workers() {
    let r = Runtime::new(10).run(&task_bag(40)).unwrap();
    assert_eq!(squares_from(&r.stdout), expected_squares(40));
    assert!(r.busy_workers() >= 3, "{} busy workers", r.busy_workers());
}

#[test]
fn multiple_servers_share_the_load() {
    // Tasks must be slow enough that queues actually build up; instant
    // tasks drain to parked workers before any steal request lands.
    let src = r#"
        (int o) work (int i) [
            "set acc 0
             for {set k 0} {$k < 6000} {incr k} { incr acc $k }
             set <<o>> [ expr {<<i>> * <<i>>} ]"
        ];
        foreach i in [1:60] {
            int s = work(i);
            trace(s);
        }
    "#;
    let r = Runtime::new(12).servers(3).run(src).unwrap();
    assert_eq!(squares_from(&r.stdout), expected_squares(60));
    let totals = r.server_totals();
    assert!(
        totals.tasks_stolen > 0,
        "with all puts on engine 0's server, other servers must steal: {totals:?}"
    );
}

#[test]
fn multiple_engines_split_control() {
    // Loop splitting spawns distributable control tasks; with 2 engines
    // the second picks some up.
    let r = Runtime::new(10).engines(2).run(&task_bag(64)).unwrap();
    assert_eq!(squares_from(&r.stdout), expected_squares(64));
    let engine_rules: Vec<u64> = r
        .outputs
        .iter()
        .filter(|o| o.role == swiftt::core::Role::Engine)
        .map(|o| o.rules_created)
        .collect();
    assert_eq!(engine_rules.len(), 2);
    assert!(
        engine_rules.iter().all(|&n| n > 0),
        "both engines must create rules, got {engine_rules:?}"
    );
}

#[test]
fn stealing_disabled_still_completes() {
    // Ablation: correctness must not depend on stealing (only speed and
    // balance do).
    let r = Runtime::new(8)
        .servers(2)
        .work_stealing(false)
        .run(&task_bag(30))
        .unwrap();
    assert_eq!(squares_from(&r.stdout), expected_squares(30));
    assert_eq!(r.server_totals().tasks_stolen, 0);
}

#[test]
fn uneven_task_sizes_are_balanced() {
    // Tasks with wildly varying runtimes (the paper's f()/g() "varying
    // runtimes" case): busy-wait loops sized by the iteration index.
    let src = r#"
        (int o) work (int i) [
            "set acc 0
             set reps [expr {(<<i>> % 7) * 400}]
             for {set k 0} {$k < $reps} {incr k} { incr acc $k }
             set <<o>> <<i>>"
        ];
        foreach i in [1:40] {
            int s = work(i);
            trace(s);
        }
    "#;
    let r = Runtime::new(9).servers(2).run(src).unwrap();
    assert_eq!(r.stdout.lines().count(), 40);
    assert!(
        r.busy_workers() >= 3,
        "uneven work must still spread: {} busy",
        r.busy_workers()
    );
}

#[test]
fn worker_heavy_shape_like_the_paper() {
    // "Typically the vast majority of processes (99%+) are designated as
    // workers" — scaled to a simulated 24 ranks: 1 engine, 1 server, 22
    // workers.
    let r = Runtime::new(24).run(&task_bag(200)).unwrap();
    assert_eq!(squares_from(&r.stdout), expected_squares(200));
    assert!(
        r.busy_workers() >= 8,
        "expected broad worker participation, got {}",
        r.busy_workers()
    );
}

#[test]
fn message_counts_are_reported() {
    let r = Runtime::new(6).run(&task_bag(10)).unwrap();
    assert!(r.messages > 0);
    assert!(r.bytes > 0);
    assert!(r.elapsed.as_nanos() > 0);
}
