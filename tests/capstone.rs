//! Capstone: one program exercising every major feature together — the
//! "complex software products" development pattern of the paper's
//! introduction (native kernel + scripts + coordination logic), plus the
//! documented limitation around pipelined array access.

use swiftt::core::{NativeArg, NativeLibrary, Runtime, SwiftTError};

#[test]
fn everything_at_once() {
    // Native kernel: a deterministic "simulation" producing a score.
    let lib = NativeLibrary::new("sim", "2.1").function("run", |args| {
        let seed = args[0].as_i64()?;
        let steps = args[1].as_i64()?;
        let mut x = (seed | 1) as u64;
        for _ in 0..steps {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
        }
        Ok(NativeArg::Int((x % 1000) as i64))
    });

    let program = r#"
        // -- declarations: native leaf, tcl leaf, composite, recursion --
        (int score) simulate (int seed, int steps) "sim" "2.1" [
            "set <<score>> [ sim::run <<seed>> <<steps>> ]"
        ];
        (string o) csv_of (int a[]) [
            "set <<o>> [ join [turbine::container_values <<a>>] , ]"
        ];
        (int o) clamp (int x, int lo, int hi) {
            o = max_int(lo, min_int(x, hi));
        }
        (int o) fib (int n) {
            if (n < 2) { o = n; } else { o = fib(n - 1) + fib(n - 2); }
        }
        (int q, int rem) divmod (int a, int b) {
            q = a / b;
            rem = a % b;
        }

        // -- program parameters from argv --
        int width = toint(argv("width"));
        int steps = toint(argv("steps", "50"));

        // -- fan out native simulations, clamp scores into an array --
        int scores[];
        foreach i in [1:width] {
            scores[i] = clamp(simulate(i, steps), 0, 800);
        }

        // -- post-process in R via a Tcl bridge --
        string csv = csv_of(scores);
        string stats = r(strcat("x <- c(", csv, ")"),
                         "paste(length(x), max(x) <= 800)");

        // -- python for string assembly, multi-output, recursion --
        string banner = python("parts = []
for i in range(3):
    parts.append('=' * (i + 1))
out = '/'.join(parts)", "out");
        int q;
        int m;
        q, m = divmod(fib(10), 7);

        printf("banner %s", banner);
        printf("stats %s", stats);
        printf("fib10 %d = 7*%d+%d", fib(10), q, m);
    "#;

    let r = Runtime::new(8)
        .native_library(lib)
        .arg("width", "12")
        .run(program)
        .unwrap();

    let mut lines: Vec<&str> = r.stdout.lines().collect();
    lines.sort();
    assert_eq!(lines.len(), 3);
    assert_eq!(lines[0], "banner =/==/===");
    assert_eq!(lines[1], "fib10 55 = 7*7+6");
    assert_eq!(lines[2], "stats 12 TRUE");
    // 12 native sims + printfs + python leaf all ran as worker tasks.
    assert!(r.total_tasks() >= 16, "tasks: {}", r.total_tasks());
    assert!(r.busy_workers() >= 2);
}

#[test]
fn cross_array_pipelines_are_fine() {
    // Reads of A[i] wait for the whole container to close; A closes at
    // the end of the declaring scope, so consuming one array into another
    // works (the close-then-fire order resolves at termination of main).
    let r = Runtime::new(4)
        .run(
            r#"
            int A[];
            A[0] = 1;
            int B[];
            B[0] = A[0] + 1;
            trace(B[0]);
        "#,
        )
        .unwrap();
    assert_eq!(
        r.stdout,
        "trace: 2
"
    );
}

#[test]
fn wavefront_within_one_array_deadlocks_with_diagnosis() {
    // DOCUMENTED LIMITATION (README "Limitations"): element reads wait
    // for the *whole* container, so a wavefront that reads earlier
    // members of the array it is writing forms a cycle — A cannot close
    // while A[1]'s pending insert holds a writer slot, and that insert's
    // value waits on a read of A. Swift/T's per-member waits would allow
    // this; here it must be *diagnosed*, not hang.
    let err = Runtime::new(4)
        .run(
            r#"
            int A[];
            A[0] = 1;
            A[1] = A[0] + 1;
            trace(size(A));
        "#,
        )
        .unwrap_err();
    match err {
        SwiftTError::Runtime(m) => assert!(m.contains("dataflow deadlock"), "{m}"),
        other => panic!("expected deadlock diagnosis, got {other:?}"),
    }
}

#[test]
fn sequential_array_pipeline_works_via_separate_arrays() {
    // The supported pattern: stage outputs into a fresh array per stage.
    let r = Runtime::new(6)
        .run(
            r#"
            int A[];
            foreach i in [0:4] { A[i] = i + 1; }

            int B[];
            foreach v, k in A { B[k] = v * 10; }

            int total = size(B);
            trace(total);
        "#,
        )
        .unwrap();
    assert_eq!(r.stdout, "trace: 5\n");
}
