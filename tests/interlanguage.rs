//! Experiment E1 (correctness side): every interlanguage path of §III.
//!
//! Swift orchestrates code in Tcl (fragment templates), native code (a
//! registered library, the SWIG analogue), Python, R, and the shell — all
//! in one program when needed, which is the paper's headline capability:
//! "Swift scripts [can] orchestrate distributed execution of code written
//! in a wide variety of languages".

use swiftt::core::{NativeArg, NativeLibrary, Runtime};

#[test]
fn tcl_fragment_with_type_conversion() {
    // §III.A: inputs of different types are converted automatically; the
    // template is ordinary Tcl.
    let r = Runtime::new(3)
        .run(
            r#"
            (string o) describe (int n, float x, string tag) [
                "set <<o>> \"<<tag>>: [expr {<<n>> * 2}] and [format %.2f <<x>>]\""
            ];
            string s = describe(21, 2.5, "result");
            printf("%s", s);
        "#,
        )
        .unwrap();
    assert_eq!(r.stdout, "result: 42 and 2.50\n");
}

#[test]
fn multiline_tcl_fragment() {
    // §III.A second benefit: "short fragments of imperative code" via the
    // multiline string syntax.
    let r = Runtime::new(3)
        .run(
            r#"
            (int o) sum_to (int n) [
                "set acc 0
                 for {set k 1} {$k <= <<n>>} {incr k} { incr acc $k }
                 set <<o>> $acc"
            ];
            int s = sum_to(100);
            printf("%d", s);
        "#,
        )
        .unwrap();
    assert_eq!(r.stdout, "5050\n");
}

#[test]
fn python_leaf() {
    let r = Runtime::new(3)
        .run(
            r#"
            string out = python("total = 0
for i in range(5):
    total += i * i", "total");
            printf("py says %s", out);
        "#,
        )
        .unwrap();
    assert_eq!(r.stdout, "py says 30\n");
}

#[test]
fn r_leaf() {
    let r = Runtime::new(3)
        .run(
            r#"
            string m = r("x <- c(2, 4, 6, 8)", "mean(x)");
            printf("mean = %s", m);
        "#,
        )
        .unwrap();
    assert_eq!(r.stdout, "mean = 5\n");
}

#[test]
fn python_feeds_r() {
    // Cross-language pipeline: Python generates, R aggregates — chained
    // through Swift dataflow, no files, no exec.
    let r = Runtime::new(4)
        .run(
            r#"
            string data = python("parts = []
for i in range(1, 11):
    parts.append(str(i * 1.5))
out = ','.join(parts)", "out");
            string m = r(strcat("x <- c(", data, ")"), "sum(x)");
            printf("sum = %s", m);
        "#,
        )
        .unwrap();
    // 1.5 * (1+...+10) = 82.5
    assert_eq!(r.stdout, "sum = 82.5\n");
}

#[test]
fn shell_leaf() {
    let r = Runtime::new(3)
        .run(
            r#"
            string who = sh("echo swift-t");
            printf("[%s]", who);
        "#,
        )
        .unwrap();
    assert_eq!(r.stdout, "[swift-t]\n");
}

#[test]
fn native_library_with_blobs() {
    // §III.B: bulk binary data flows as blobs; the native function gets
    // raw bytes, not strings.
    let lib = NativeLibrary::new("vec", "1.0")
        .function("iota", |args| {
            let n = args[0].as_i64()? as usize;
            let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
            Ok(NativeArg::Blob(blobutils::Blob::from_f64s(&data)))
        })
        .function("dot", |args| {
            let a = args[0].as_blob()?.to_f64s().map_err(|e| e.to_string())?;
            let b = args[1].as_blob()?.to_f64s().map_err(|e| e.to_string())?;
            if a.len() != b.len() {
                return Err("length mismatch".into());
            }
            Ok(NativeArg::Float(a.iter().zip(&b).map(|(x, y)| x * y).sum()))
        });
    let r = Runtime::new(3)
        .native_library(lib)
        .run(
            r#"
            (blob o) iota (int n) "vec" "1.0" [ "set <<o>> [ vec::iota <<n>> ]" ];
            (float o) dot (blob a, blob b) "vec" "1.0" [ "set <<o>> [ vec::dot <<a>> <<b>> ]" ];
            blob v = iota(10);
            float d = dot(v, v);
            printf("dot = %.1f", d);
        "#,
        )
        .unwrap();
    // sum i^2, i=0..9 = 285.
    assert_eq!(r.stdout, "dot = 285.0\n");
}

#[test]
fn all_languages_in_one_program() {
    let lib = NativeLibrary::new("nat", "1.0")
        .function("triple", |args| Ok(NativeArg::Int(args[0].as_i64()? * 3)));
    let r = Runtime::new(4)
        .native_library(lib)
        .run(
            r#"
            (int o) triple (int x) "nat" "1.0" [ "set <<o>> [ nat::triple <<x>> ]" ];
            (int o) tclsq (int x) [ "set <<o>> [ expr {<<x>> * <<x>>} ]" ];

            int a = triple(2);                      // native
            int b = tclsq(a);                       // tcl
            string c = python(strcat("v = ", fromint(b)), "v + 1");  // python
            string d = r(strcat("v <- ", c), "v * 2");               // r
            printf("chain: %s", d);
        "#,
        )
        .unwrap();
    // 2 → 6 → 36 → 37 → 74
    assert_eq!(r.stdout, "chain: 74\n");
}

#[test]
fn interpreter_output_is_captured() {
    // print()/cat() inside embedded interpreters lands in the rank's
    // stdout stream (worker side).
    let r = Runtime::new(3)
        .run(
            r#"
            string x = python("print('hello from python')", "0");
            trace(x);
        "#,
        )
        .unwrap();
    assert!(r.stdout.contains("hello from python"));
    assert!(r.stdout.contains("trace: 0"));
}
