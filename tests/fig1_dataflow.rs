//! Experiment F1 (correctness side): the paper's Fig. 1 dataflow.
//!
//! §II.A shows this loop and its implied dataflow graph — ten independent
//! f→g pipelines that Swift "will construct and execute in parallel on any
//! available resources":
//!
//! ```swift
//! foreach i in [0:9] {
//!     int t = f(i);
//!     if (g(t) == 0) { printf("g(%i) == 0", t); }
//! }
//! ```
//!
//! These tests run the program end to end on a simulated machine and check
//! the dataflow semantics: every pipeline runs, g(t) is blocked only on
//! its own f(t), and the work spreads over multiple workers.

use swiftt::core::Runtime;

/// f(i) = 3*i + 1; g(t) = t % 4 — so g(f(i)) == 0 iff (3i+1) % 4 == 0,
/// i.e. i ∈ {1, 5, 9} in [0:9].
const FIG1: &str = r#"
    (int o) f (int i) [ "set <<o>> [ expr {3 * <<i>> + 1} ]" ];
    (int o) g (int t) [ "set <<o>> [ expr {<<t>> % 4} ]" ];

    foreach i in [0:9] {
        int t = f(i);
        if (g(t) == 0) {
            printf("g(%i) == 0", t);
        }
    }
"#;

#[test]
fn fig1_produces_exactly_the_matching_lines() {
    let r = Runtime::new(6).run(FIG1).unwrap();
    let mut lines: Vec<&str> = r.stdout.lines().collect();
    lines.sort();
    // i ∈ {1,5,9} → t ∈ {4,16,28}.
    assert_eq!(lines, vec!["g(16) == 0", "g(28) == 0", "g(4) == 0"]);
}

#[test]
fn fig1_runs_one_f_and_one_g_per_iteration() {
    let r = Runtime::new(6).run(FIG1).unwrap();
    // 10×f + 10×g leaf tasks + 3 printf tasks.
    assert_eq!(r.total_tasks(), 23);
}

#[test]
fn fig1_pipelines_spread_across_workers() {
    // 12 ranks: 1 engine, 1 server, 10 workers — with 20 leaf tasks the
    // load balancer must use more than one worker.
    let r = Runtime::new(12).run(FIG1).unwrap();
    assert!(
        r.busy_workers() >= 2,
        "expected parallel pipelines, got {} busy workers",
        r.busy_workers()
    );
}

#[test]
fn fig1_statement_order_is_irrelevant() {
    // Same program with the declaration *after* its use site inside the
    // loop body would be a parse error in C; in Swift the dataflow order
    // rules. Here we reorder whole statements at top level instead.
    let reordered = r#"
        foreach i in [0:9] {
            int t = f(i);
            if (g(t) == 0) {
                printf("g(%i) == 0", t);
            }
        }

        (int o) f (int i) [ "set <<o>> [ expr {3 * <<i>> + 1} ]" ];
        (int o) g (int t) [ "set <<o>> [ expr {<<t>> % 4} ]" ];
    "#;
    let r = Runtime::new(6).run(reordered).unwrap();
    assert_eq!(r.stdout.lines().count(), 3);
}

#[test]
fn fig1_wide_version_scales() {
    // Widen the loop to 128 pipelines; all 2×128 leaf tasks must complete
    // and the right count of matches appear: (3i+1)%4==0 ⇔ i ≡ 1 (mod 4),
    // 32 matches in [0:127].
    let wide = r#"
        (int o) f (int i) [ "set <<o>> [ expr {3 * <<i>> + 1} ]" ];
        (int o) g (int t) [ "set <<o>> [ expr {<<t>> % 4} ]" ];
        foreach i in [0:127] {
            int t = f(i);
            if (g(t) == 0) { printf("hit %i", t); }
        }
    "#;
    let r = Runtime::new(10).servers(2).run(wide).unwrap();
    assert_eq!(r.stdout.lines().count(), 32);
    assert_eq!(r.total_tasks(), 128 * 2 + 32);
}
