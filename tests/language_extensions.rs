//! Tests for language/runtime extensions beyond the minimal paper demo:
//! multi-output calls, program arguments, and dataflow deadlock
//! detection.

use swiftt::core::{Runtime, SwiftTError};

#[test]
fn multi_output_call() {
    let r = Runtime::new(4)
        .run(
            r#"
            (int q, int rem) divmod (int a, int b) {
                q = a / b;
                rem = a % b;
            }
            int q;
            int m;
            q, m = divmod(17, 5);
            printf("%d r %d", q, m);
        "#,
        )
        .unwrap();
    assert_eq!(r.stdout, "3 r 2\n");
}

#[test]
fn multi_output_leaf() {
    let r = Runtime::new(4)
        .run(
            r#"
            (int lo, int hi) order (int a, int b) [
                "if {<<a>> < <<b>>} {
                     set <<lo>> <<a>>; set <<hi>> <<b>>
                 } else {
                     set <<lo>> <<b>>; set <<hi>> <<a>>
                 }"
            ];
            int lo;
            int hi;
            lo, hi = order(9, 4);
            printf("%d..%d", lo, hi);
        "#,
        )
        .unwrap();
    assert_eq!(r.stdout, "4..9\n");
}

#[test]
fn multi_output_arity_mismatch_is_compile_error() {
    let err = Runtime::new(3)
        .run(
            r#"
            (int a, int b) two (int x) { a = x; b = x; }
            int p;
            p = two(1);
        "#,
        )
        .unwrap_err();
    match err {
        SwiftTError::Compile(e) => assert!(e.message.contains("outputs"), "{}", e.message),
        other => panic!("{other:?}"),
    }
}

#[test]
fn argv_values_and_defaults() {
    let r = Runtime::new(3)
        .arg("name", "turbine")
        .arg("n", "3")
        .run(
            r#"
            string who = argv("name");
            int n = toint(argv("n"));
            string mode = argv("mode", "fast");
            printf("%s %d %s", who, n * 2, mode);
        "#,
        )
        .unwrap();
    assert_eq!(r.stdout, "turbine 6 fast\n");
}

#[test]
fn missing_argv_without_default_fails() {
    let err = Runtime::new(3)
        .run(r#"string x = argv("nope"); trace(x);"#)
        .unwrap_err();
    match err {
        SwiftTError::Runtime(m) => {
            assert!(m.contains("missing program argument --nope"), "{m}")
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn deadlock_detected_for_unassigned_future() {
    let err = Runtime::new(3)
        .run(
            r#"
            int x;
            int y = x + 1;
            trace(y);
        "#,
        )
        .unwrap_err();
    match err {
        SwiftTError::Runtime(m) => assert!(m.contains("dataflow deadlock"), "{m}"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn deadlock_detected_for_half_assigned_if() {
    // Only one branch assigns `y`; when the other branch runs, the trace
    // rule waits forever.
    let err = Runtime::new(3)
        .run(
            r#"
            int cond = 0;
            int y;
            if (cond == 1) { y = 10; }
            trace(y);
        "#,
        )
        .unwrap_err();
    match err {
        SwiftTError::Runtime(m) => assert!(m.contains("dataflow deadlock"), "{m}"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn no_false_deadlock_on_clean_program() {
    let r = Runtime::new(4)
        .run("int x = 1; int y = x + 1; trace(y);")
        .unwrap();
    assert_eq!(r.stdout, "trace: 2\n");
}

#[test]
fn argv_from_cli_shape_program() {
    // Sweep-style program parameterized by argv, like the CLI would run.
    let r = Runtime::new(5)
        .arg("width", "6")
        .run(
            r#"
            int w = toint(argv("width"));
            foreach i in [1:w] {
                trace(i * i);
            }
        "#,
        )
        .unwrap();
    assert_eq!(r.stdout.lines().count(), 6);
}
