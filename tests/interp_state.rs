//! Experiment E3 (correctness side): the retain-vs-reinitialize
//! interpreter policy of §III.C.
//!
//! "One approach is to finalize the interpreter at the end of each task and
//! reinitialize it when the next task is started, thus clearing any state.
//! This approach raises concerns about performance [...] Thus, we provide
//! options to either retain the interpreter or reinitialize it."

use swiftt::core::{InterpPolicy, Runtime, SwiftTError};

/// A chain of python tasks where each later task needs state from the
/// previous one. Dataflow forces task order via the string outputs.
fn stateful_chain() -> &'static str {
    r#"
        string a = python("acc = 1", "acc");
        string b = python(strcat("acc = acc + ", a), "acc");
        string c = python(strcat("acc = acc + ", b), "acc");
        printf("%s %s %s", a, b, c);
    "#
}

#[test]
fn retain_shares_state_between_tasks() {
    let r = Runtime::new(3)
        .policy(InterpPolicy::Retain)
        .run(stateful_chain())
        .unwrap();
    // acc: 1, then 1+1=2, then 2+2=4.
    assert_eq!(r.stdout, "1 2 4\n");
    // A single Python initialization for all three tasks.
    assert_eq!(r.total_interp_inits(), 1);
}

#[test]
fn reinitialize_isolates_tasks() {
    let err = Runtime::new(3)
        .policy(InterpPolicy::Reinitialize)
        .run(stateful_chain())
        .unwrap_err();
    // Task b references `acc`, which was cleared after task a.
    match err {
        SwiftTError::Runtime(m) => assert!(m.contains("NameError"), "{m}"),
        other => panic!("expected NameError, got {other:?}"),
    }
}

#[test]
fn reinitialize_pays_one_init_per_task() {
    // Self-contained tasks succeed under both policies; the observable
    // difference is the interpreter initialization count.
    let src = r#"
        string a = python("x = 10", "x");
        string b = python(strcat("x = ", a), "x + 1");
        string c = python(strcat("x = ", b), "x + 1");
        printf("%s %s %s", a, b, c);
    "#;
    let retain = Runtime::new(3)
        .policy(InterpPolicy::Retain)
        .run(src)
        .unwrap();
    let reinit = Runtime::new(3)
        .policy(InterpPolicy::Reinitialize)
        .run(src)
        .unwrap();
    assert_eq!(retain.stdout, "10 11 12\n");
    assert_eq!(reinit.stdout, "10 11 12\n");
    assert_eq!(retain.total_interp_inits(), 1);
    assert_eq!(reinit.total_interp_inits(), 3);
}

#[test]
fn r_interpreter_follows_the_same_policy() {
    let src = r#"
        string a = r("acc <- 5", "acc");
        string b = r(strcat("acc <- acc + ", a), "acc");
        printf("%s %s", a, b);
    "#;
    let retain = Runtime::new(3)
        .policy(InterpPolicy::Retain)
        .run(src)
        .unwrap();
    assert_eq!(retain.stdout, "5 10\n");
    let reinit = Runtime::new(3).policy(InterpPolicy::Reinitialize).run(src);
    assert!(reinit.is_err(), "R state must not survive reinitialize");
}

#[test]
fn deliberate_state_reuse_as_cache() {
    // §III.C: "old interpreter state can also be used to store useful data
    // if the programmer is careful" — a memo table surviving across tasks.
    let src = r#"
        string warm = python("memo = {}
def fib(n):
    if n < 2:
        return n
    k = str(n)
    if k in memo:
        return memo[k]
    v = fib(n - 1) + fib(n - 2)
    memo[k] = v
    return v
fib(30)", "len(memo)");
        string hot = python(strcat("warm_entries = ", warm), "fib(31)");
        printf("memo=%s fib31=%s", warm, hot);
    "#;
    let r = Runtime::new(3)
        .policy(InterpPolicy::Retain)
        .run(src)
        .unwrap();
    assert_eq!(r.stdout, "memo=29 fib31=1346269\n");
}

#[test]
fn policies_do_not_affect_pure_tcl_tasks() {
    // The Tcl interpreter is the runtime itself and persists either way.
    let src = r#"
        (int o) inc (int x) [ "set <<o>> [ expr {<<x>> + 1} ]" ];
        int a = inc(1);
        int b = inc(a);
        printf("%d", b);
    "#;
    for policy in [InterpPolicy::Retain, InterpPolicy::Reinitialize] {
        let r = Runtime::new(3).policy(policy).run(src).unwrap();
        assert_eq!(r.stdout, "3\n");
    }
}
