//! Recursive dataflow: composite functions that call themselves through
//! `if` branches. Each recursion level creates new futures and rules at
//! run time — the "pervasive, automatic concurrency" of §II.A applied to
//! a dynamic call tree.

use swiftt::core::Runtime;

#[test]
fn fibonacci_recursion() {
    let r = Runtime::new(4)
        .run(
            r#"
            (int o) fib (int n) {
                if (n < 2) { o = n; }
                else { o = fib(n - 1) + fib(n - 2); }
            }
            printf("%d", fib(12));
        "#,
        )
        .unwrap();
    assert_eq!(r.stdout, "144\n");
}

#[test]
fn mutual_recursion() {
    let r = Runtime::new(4)
        .run(
            r#"
            (int o) is_even (int n) {
                if (n == 0) { o = 1; }
                else { o = is_odd(n - 1); }
            }
            (int o) is_odd (int n) {
                if (n == 0) { o = 0; }
                else { o = is_even(n - 1); }
            }
            printf("%d %d", is_even(10), is_odd(7));
        "#,
        )
        .unwrap();
    assert_eq!(r.stdout, "1 1\n");
}

#[test]
fn recursive_tree_spawns_leaf_work() {
    // Binary recursion bottoming out in leaf tasks: the dynamic call tree
    // generates 2^depth leaves distributed over workers.
    let r = Runtime::new(8)
        .run(
            r#"
            (int o) unit (int x) [ "set <<o>> 1" ];
            (int o) count (int depth) {
                if (depth == 0) { o = unit(0); }
                else { o = count(depth - 1) + count(depth - 1); }
            }
            printf("%d", count(5));
        "#,
        )
        .unwrap();
    assert_eq!(r.stdout, "32\n");
    let leaf_tasks = r.outputs.iter().map(|o| o.tasks_executed).sum::<u64>();
    // 32 unit leaves + 1 printf.
    assert_eq!(leaf_tasks, 33);
}

#[test]
fn ackermann_small() {
    // Deep recursion through nested ifs; ack(2, 3) = 9.
    let r = Runtime::new(4)
        .run(
            r#"
            (int o) ack (int m, int n) {
                if (m == 0) { o = n + 1; }
                else if (n == 0) { o = ack(m - 1, 1); }
                else { o = ack(m - 1, ack(m, n - 1)); }
            }
            printf("%d", ack(2, 3));
        "#,
        )
        .unwrap();
    assert_eq!(r.stdout, "9\n");
}
