//! Property test: compiled Swift programs compute what a direct Rust
//! oracle computes.
//!
//! Random straight-line integer programs (declarations whose initializers
//! reference earlier variables) are generated together with their oracle
//! values, compiled by STC, executed on a real simulated machine, and the
//! traced outputs compared. This pins the whole stack — lexer, parser,
//! codegen, Tcl library, engine, data store, workers — to Tcl's integer
//! semantics (floor division; modulo takes the divisor's sign).

use proptest::prelude::*;
use swiftt::core::Runtime;

/// Tcl's floor division (quotient toward negative infinity).
fn floor_div(x: i64, y: i64) -> i64 {
    let q = x / y;
    if (x % y != 0) && ((x < 0) != (y < 0)) {
        q - 1
    } else {
        q
    }
}

#[derive(Debug, Clone, Copy)]
enum Src {
    Lit(i64),
    Var(usize),
}

#[derive(Debug, Clone, Copy)]
struct Inst {
    op: u8, // 0..5: + - * / % and "copy lhs"
    lhs: Src,
    rhs: Src,
}

fn src_strategy() -> impl Strategy<Value = Src> {
    prop_oneof![
        (-99i64..100).prop_map(Src::Lit),
        (0usize..64).prop_map(Src::Var),
    ]
}

fn inst_strategy() -> impl Strategy<Value = Inst> {
    (0u8..6, src_strategy(), src_strategy()).prop_map(|(op, lhs, rhs)| Inst { op, lhs, rhs })
}

/// Materialize instructions into (program text, oracle values), guarding
/// division by zero and overflow by falling back to `+`.
fn build_program(insts: &[Inst]) -> (String, Vec<i64>) {
    let mut src = String::new();
    let mut values: Vec<i64> = Vec::new();
    for inst in insts {
        let resolve = |s: Src, values: &[i64]| -> (String, i64) {
            match s {
                Src::Lit(v) => {
                    // Negative literals render as (0 - v) to stay inside
                    // the expression grammar exercised here.
                    if v < 0 {
                        (format!("(0 - {})", -v), v)
                    } else {
                        (v.to_string(), v)
                    }
                }
                Src::Var(i) if !values.is_empty() => {
                    let i = i % values.len();
                    (format!("x{i}"), values[i])
                }
                Src::Var(_) => ("1".to_string(), 1),
            }
        };
        let (le, lv) = resolve(inst.lhs, &values);
        let (re, rv) = resolve(inst.rhs, &values);
        let bound = 1i64 << 50;
        let (expr, value) = match inst.op {
            0 => (format!("{le} + {re}"), lv.checked_add(rv)),
            1 => (format!("{le} - {re}"), lv.checked_sub(rv)),
            2 => (format!("{le} * {re}"), lv.checked_mul(rv)),
            3 if rv != 0 => (format!("{le} / {re}"), Some(floor_div(lv, rv))),
            4 if rv != 0 => (format!("{le} % {re}"), Some(lv - rv * floor_div(lv, rv))),
            _ => (le.clone(), Some(lv)),
        };
        let (expr, value) = match value {
            Some(v) if v.abs() < bound => (expr, v),
            // Overflow guard: degrade to a safe copy.
            _ => (le, lv),
        };
        let idx = values.len();
        src.push_str(&format!("int x{idx} = {expr};\n"));
        values.push(value);
    }
    for i in 0..values.len() {
        src.push_str(&format!("trace(x{i});\n"));
    }
    (src, values)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case boots a whole simulated machine
        .. ProptestConfig::default()
    })]

    #[test]
    fn straight_line_programs_match_oracle(
        insts in proptest::collection::vec(inst_strategy(), 1..14)
    ) {
        let (src, values) = build_program(&insts);
        let r = Runtime::new(4).run(&src).unwrap_or_else(|e| {
            panic!("program failed: {e}\nsource:\n{src}")
        });
        let mut got: Vec<i64> = r
            .stdout
            .lines()
            .map(|l| l.trim_start_matches("trace: ").parse().unwrap())
            .collect();
        let mut expected = values;
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected, "source:\n{}", src);
    }
}

/// The same oracle approach, deterministic seeds, for comparison
/// operators and boolean logic.
#[test]
fn comparison_matrix_matches_oracle() {
    let vals = [-7i64, -1, 0, 1, 2, 9];
    let mut src = String::new();
    let mut expected = Vec::new();
    let mut idx = 0;
    for &a in &vals {
        for &b in &vals {
            let a_e = if a < 0 {
                format!("(0 - {})", -a)
            } else {
                a.to_string()
            };
            let b_e = if b < 0 {
                format!("(0 - {})", -b)
            } else {
                b.to_string()
            };
            for (op, v) in [
                ("<", (a < b) as i64),
                ("<=", (a <= b) as i64),
                (">", (a > b) as i64),
                (">=", (a >= b) as i64),
                ("==", (a == b) as i64),
                ("!=", (a != b) as i64),
            ] {
                src.push_str(&format!("boolean c{idx} = {a_e} {op} {b_e};\n"));
                src.push_str(&format!("trace(c{idx});\n"));
                expected.push(v);
                idx += 1;
            }
        }
    }
    let r = Runtime::new(4).run(&src).unwrap();
    let mut got: Vec<i64> = r
        .stdout
        .lines()
        .map(|l| l.trim_start_matches("trace: ").parse().unwrap())
        .collect();
    got.sort_unstable();
    expected.sort_unstable();
    assert_eq!(got, expected);
}

/// Float arithmetic against the oracle (exact for dyadic-rational
/// operands and * / + -).
#[test]
fn float_chain_matches_oracle() {
    let mut src = String::new();
    let mut vals: Vec<f64> = vec![];
    let seeds = [0.5f64, 2.25, -1.75, 8.0, 0.125];
    for (i, s) in seeds.iter().enumerate() {
        let lit = if *s < 0.0 {
            format!("(0.0 - {})", -s)
        } else {
            format!("{s}")
        };
        src.push_str(&format!("float f{i} = {lit};\n"));
        vals.push(*s);
    }
    type FloatOp = fn(f64, f64) -> f64;
    let ops: [(&str, FloatOp); 3] = [
        ("+", |a, b| a + b),
        ("-", |a, b| a - b),
        ("*", |a, b| a * b),
    ];
    let mut idx = seeds.len();
    for k in 0..9 {
        let (sym, f) = ops[k % 3];
        let a = k % idx;
        let b = (k * 3 + 1) % idx;
        src.push_str(&format!("float f{idx} = f{a} {sym} f{b};\n"));
        vals.push(f(vals[a], vals[b]));
        idx += 1;
    }
    for i in 0..idx {
        src.push_str(&format!("trace(f{i});\n"));
    }
    let r = Runtime::new(4).run(&src).unwrap();
    let mut got: Vec<f64> = r
        .stdout
        .lines()
        .map(|l| l.trim_start_matches("trace: ").parse().unwrap())
        .collect();
    got.sort_by(f64::total_cmp);
    vals.sort_by(f64::total_cmp);
    assert_eq!(got, vals);
}
