//! Minimal stand-in for the `bytes` crate.
//!
//! The build environment has no registry access, so this crate provides
//! exactly the surface the workspace uses: a cheaply cloneable immutable
//! byte buffer ([`Bytes`]) with zero-copy sub-slice views, a growable
//! builder ([`BytesMut`]) and the little-endian append methods of the
//! [`BufMut`] trait.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous byte buffer.
///
/// A `Bytes` is a view `(offset, len)` into a shared `Arc<[u8]>`;
/// [`Bytes::slice`] produces sub-views without copying, like the real
/// `bytes` crate. This is what lets message payloads alias the arrival
/// buffer instead of being copied out of it.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    fn whole(data: Arc<[u8]>) -> Self {
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }

    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::whole(Arc::from(&[][..]))
    }

    /// Wrap a static slice (copied; this stand-in keeps one representation).
    pub fn from_static(b: &'static [u8]) -> Self {
        Bytes::whole(Arc::from(b))
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(b: &[u8]) -> Self {
        Bytes::whole(Arc::from(b))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Copy out to a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }

    /// A zero-copy sub-view of this buffer: shares the backing allocation,
    /// adjusting only the view bounds.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            begin <= end && end <= self.len(),
            "slice {begin}..{end} out of bounds of {}",
            self.len()
        );
        Bytes {
            data: self.data.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self[..]
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self[..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::whole(v.into())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::whole(s.into_bytes().into())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Self {
        Bytes::from_static(b)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_escaped(&self[..], f)
    }
}

/// Debug-print as an escaped byte string, like the real crate.
fn fmt_escaped(bytes: &[u8], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "b\"")?;
    for &b in bytes {
        match b {
            b'"' => write!(f, "\\\"")?,
            b'\\' => write!(f, "\\\\")?,
            b'\n' => write!(f, "\\n")?,
            b'\r' => write!(f, "\\r")?,
            b'\t' => write!(f, "\\t")?,
            0x20..=0x7e => write!(f, "{}", b as char)?,
            _ => write!(f, "\\x{b:02x}")?,
        }
    }
    write!(f, "\"")
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Default, Debug, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::whole(self.buf.into())
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Append-style buffer writing, little-endian variants only (the wire
/// formats in this workspace are all little-endian).
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64);
    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64);
    /// Append a raw slice.
    fn put_slice(&mut self, v: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_i64_le(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_slice(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_freeze() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(1);
        m.put_u32_le(2);
        m.put_u64_le(3);
        m.put_i64_le(-4);
        m.put_f64_le(0.5);
        m.put_slice(b"xyz");
        assert_eq!(m.len(), 1 + 4 + 8 + 8 + 8 + 3);
        let b = m.freeze();
        assert_eq!(b[0], 1);
        assert_eq!(&b[1..5], &2u32.to_le_bytes());
        assert_eq!(&b[b.len() - 3..], b"xyz");
        let c = b.clone();
        assert_eq!(b, c);
    }

    #[test]
    fn slices_share_backing_without_copying() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5, 6, 7]);
        let s = b.slice(2..6);
        assert_eq!(&s[..], &[2, 3, 4, 5]);
        // Same allocation: the slice's data pointer sits inside b's range.
        let base = b.as_ptr() as usize;
        let view = s.as_ptr() as usize;
        assert_eq!(view, base + 2);
        // Sub-slicing a slice composes offsets.
        let s2 = s.slice(1..=2);
        assert_eq!(&s2[..], &[3, 4]);
        assert_eq!(s.slice(..).len(), 4);
        assert!(s.slice(2..2).is_empty());
        assert_eq!(format!("{:?}", s2), "b\"\\x03\\x04\"");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_range_slice_panics() {
        Bytes::from(vec![1u8, 2]).slice(1..4);
    }

    #[test]
    fn constructors() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"hi").to_vec(), b"hi");
        assert_eq!(Bytes::from(vec![1u8, 2]).len(), 2);
        assert_eq!(
            Bytes::from(String::from("ab")),
            Bytes::copy_from_slice(b"ab")
        );
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\n")), "b\"a\\n\"");
    }
}
