//! Minimal stand-in for the `bytes` crate.
//!
//! The build environment has no registry access, so this crate provides
//! exactly the surface the workspace uses: a cheaply cloneable immutable
//! byte buffer ([`Bytes`]), a growable builder ([`BytesMut`]) and the
//! little-endian append methods of the [`BufMut`] trait. `Bytes` is a
//! whole-buffer `Arc<[u8]>` — no sub-slice views, which the workspace
//! never takes.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Wrap a static slice (copied; this stand-in keeps one representation).
    pub fn from_static(b: &'static [u8]) -> Self {
        Bytes { data: Arc::from(b) }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(b: &[u8]) -> Self {
        Bytes { data: Arc::from(b) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out to a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes {
            data: s.into_bytes().into(),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Self {
        Bytes::from_static(b)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_escaped(&self.data, f)
    }
}

/// Debug-print as an escaped byte string, like the real crate.
fn fmt_escaped(bytes: &[u8], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "b\"")?;
    for &b in bytes {
        match b {
            b'"' => write!(f, "\\\"")?,
            b'\\' => write!(f, "\\\\")?,
            b'\n' => write!(f, "\\n")?,
            b'\r' => write!(f, "\\r")?,
            b'\t' => write!(f, "\\t")?,
            0x20..=0x7e => write!(f, "{}", b as char)?,
            _ => write!(f, "\\x{b:02x}")?,
        }
    }
    write!(f, "\"")
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Default, Debug, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.buf.into(),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Append-style buffer writing, little-endian variants only (the wire
/// formats in this workspace are all little-endian).
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64);
    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64);
    /// Append a raw slice.
    fn put_slice(&mut self, v: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_i64_le(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_slice(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_freeze() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(1);
        m.put_u32_le(2);
        m.put_u64_le(3);
        m.put_i64_le(-4);
        m.put_f64_le(0.5);
        m.put_slice(b"xyz");
        assert_eq!(m.len(), 1 + 4 + 8 + 8 + 8 + 3);
        let b = m.freeze();
        assert_eq!(b[0], 1);
        assert_eq!(&b[1..5], &2u32.to_le_bytes());
        assert_eq!(&b[b.len() - 3..], b"xyz");
        let c = b.clone();
        assert_eq!(b, c);
    }

    #[test]
    fn constructors() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"hi").to_vec(), b"hi");
        assert_eq!(Bytes::from(vec![1u8, 2]).len(), 2);
        assert_eq!(
            Bytes::from(String::from("ab")),
            Bytes::copy_from_slice(b"ab")
        );
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\n")), "b\"a\\n\"");
    }
}
