//! Minimal stand-in for `parking_lot`, implemented over `std::sync`.
//!
//! Provides the non-poisoning `Mutex`/`Condvar` API shape the workspace
//! uses: `lock()` returns a guard directly, and a panicked holder's
//! poison flag is ignored (callers implement their own poisoning at the
//! mailbox level).

use std::fmt;
use std::sync::{self, TryLockError};
use std::time::Instant;

/// A mutex whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(t: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(t),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning from panicked holders.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed condition-variable wait.
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable operating on [`MutexGuard`]s.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// A fresh condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified (spurious wakeups possible, as usual).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(&mut guard.inner, |g| {
            self.inner.wait(g).unwrap_or_else(|e| e.into_inner())
        });
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        replace_guard(&mut guard.inner, |g| {
            let dur = deadline.saturating_duration_since(Instant::now());
            let (g, res) = self
                .inner
                .wait_timeout(g, dur)
                .unwrap_or_else(|e| e.into_inner());
            timed_out = res.timed_out();
            g
        });
        WaitTimeoutResult { timed_out }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Run `f` on the owned std guard behind `slot`, putting the returned
/// guard back. std's condvar consumes and returns guards by value while
/// the parking_lot API mutates one in place; bridge by moving the guard
/// out and back. If `f` unwound mid-move the slot would be left holding a
/// dropped guard, so abort in that (unreachable: the poison-recovering
/// waits never panic) case rather than risk a double unlock.
fn replace_guard<'a, T: ?Sized>(
    slot: &mut sync::MutexGuard<'a, T>,
    f: impl FnOnce(sync::MutexGuard<'a, T>) -> sync::MutexGuard<'a, T>,
) {
    struct AbortOnUnwind;
    impl Drop for AbortOnUnwind {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    unsafe {
        let bomb = AbortOnUnwind;
        let g = std::ptr::read(slot);
        let g = f(g);
        std::ptr::write(slot, g);
        std::mem::forget(bomb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakeup() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
