//! Minimal stand-in for `proptest`.
//!
//! The build environment has no registry access, so this crate implements
//! the subset of the proptest 1.x API the workspace uses: the `proptest!`
//! macro (with `#![proptest_config]`), `Strategy` with `prop_map` /
//! `prop_recursive` / `boxed`, `Just`, `prop_oneof!`, `any::<T>()`,
//! numeric range strategies, regex-subset string strategies,
//! `proptest::collection::vec`, and `proptest::option::of`.
//!
//! Differences from the real crate: generation is a deterministic
//! pseudo-random stream seeded from the test's module path and name (so
//! failures reproduce exactly under `cargo test`), and there is **no
//! shrinking** — the failing input is printed instead. Case count comes
//! from `ProptestConfig::cases`, overridable with the `PROPTEST_CASES`
//! environment variable.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Run each listed test function against many generated inputs.
///
/// Supports the form
/// `proptest! { #![proptest_config(expr)] #[test] fn name(x in strategy, ..) { body } .. }`
/// with the config attribute optional.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( cfg = ($cfg:expr);
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                // Bind each strategy once under the argument's own name;
                // the per-case value binding below shadows it.
                $(let $arg = ($strat);)+
                for __case in 0..__config.cases() {
                    $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut __rng);)+
                    let __desc = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    // The body may `return Err(TestCaseError::..)` / `Ok(())`
                    // early, like real proptest; a plain `()` body falls
                    // through to the trailing Ok.
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                                $body
                                #[allow(unreachable_code)]
                                return ::std::result::Result::Ok(());
                            },
                        ),
                    );
                    match __outcome {
                        Ok(Ok(())) => {}
                        Ok(Err(__fail)) => {
                            panic!(
                                "proptest stand-in: {} failed at case {}/{} with input: {}: {}",
                                stringify!($name),
                                __case + 1,
                                __config.cases(),
                                __desc,
                                __fail
                            );
                        }
                        Err(__panic) => {
                            eprintln!(
                                "proptest stand-in: {} failed at case {}/{} with input: {}",
                                stringify!($name),
                                __case + 1,
                                __config.cases(),
                                __desc
                            );
                            ::std::panic::resume_unwind(__panic);
                        }
                    }
                }
            }
        )*
    };
}

/// Choose uniformly among the listed strategies (all of one value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Assert inside a `proptest!` body (no early-return machinery needed
/// here — a failed assertion panics and the harness reports the input).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}
