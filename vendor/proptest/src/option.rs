//! `Option` strategies (`of`).

use std::fmt;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `None` about a quarter of the time, otherwise `Some` of the
/// inner strategy's value (the real crate's default weighting is also
/// biased toward `Some`).
pub fn of<S>(inner: S) -> OptionStrategy<S>
where
    S: Strategy,
{
    OptionStrategy { inner }
}

/// Strategy produced by [`of`].
#[derive(Clone, Copy, Debug)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S> Strategy for OptionStrategy<S>
where
    S: Strategy,
    S::Value: fmt::Debug,
{
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
