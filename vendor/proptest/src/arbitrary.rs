//! `any::<T>()` support for primitive types.

use std::fmt;
use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: fmt::Debug + Sized {
    /// Generate one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any {
            _marker: PhantomData,
        }
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// Whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_bool()
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                // Bias toward the edge cases real proptest likes to find.
                match rng.below(16) {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 => 1,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        match rng.below(16) {
            0 => 0.0,
            1 => -0.0,
            2 => f64::INFINITY,
            3 => f64::NEG_INFINITY,
            4 => f64::NAN,
            5 => f64::MIN_POSITIVE,
            _ => {
                let magnitude = (rng.unit_f64() * 600.0 - 300.0).exp2();
                let sign = if rng.next_bool() { 1.0 } else { -1.0 };
                sign * magnitude * rng.unit_f64()
            }
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary_value(rng: &mut TestRng) -> f32 {
        f64::arbitrary_value(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary_value(rng: &mut TestRng) -> char {
        if rng.below(4) == 0 {
            char::from_u32(rng.below(0x11_0000) as u32).unwrap_or('\u{FFFD}')
        } else {
            (b' ' + rng.below(95) as u8) as char
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_edges_and_randoms() {
        let mut rng = TestRng::from_seed(9);
        let vals: Vec<u64> = (0..200).map(|_| u64::arbitrary_value(&mut rng)).collect();
        assert!(vals.contains(&0));
        assert!(vals.contains(&u64::MAX));
        assert!(vals.iter().any(|&v| v != 0 && v != u64::MAX));
    }
}
