//! Generation of strings matching a small regex subset.
//!
//! Supported syntax: literal characters, `.` (any printable char, no
//! newline), character classes `[...]` with ranges/escapes/leading-`^`
//! negation, escapes `\\x`, and the quantifiers `{m}`, `{m,n}`, `*`, `+`,
//! `?`. Alternation and groups are not supported (the workspace's
//! patterns do not use them); unrecognized metacharacters generate
//! themselves literally.

use crate::test_runner::TestRng;

enum Set {
    /// `.`: any printable character except newline.
    Any,
    /// A single literal character.
    Lit(char),
    /// `[...]`: inclusive code-point ranges, possibly negated.
    Class {
        ranges: Vec<(u32, u32)>,
        negated: bool,
    },
}

struct Atom {
    set: Set,
    min: usize,
    max: usize,
}

/// Non-ASCII sprinkle for `.`, so interpreter robustness tests see some
/// multi-byte UTF-8 without drowning in it.
const EXOTIC: &[char] = &['é', 'ß', 'λ', '∑', '中', '🦀'];

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = match chars[i] {
            '.' => {
                i += 1;
                Set::Any
            }
            '\\' if i + 1 < chars.len() => {
                let c = chars[i + 1];
                i += 2;
                Set::Lit(unescape(c))
            }
            '[' => {
                i += 1;
                let negated = i < chars.len() && chars[i] == '^';
                if negated {
                    i += 1;
                }
                let mut ranges = Vec::new();
                let mut first = true;
                while i < chars.len() && (chars[i] != ']' || first) {
                    first = false;
                    let lo = if chars[i] == '\\' && i + 1 < chars.len() {
                        i += 1;
                        let c = unescape(chars[i]);
                        i += 1;
                        c
                    } else {
                        let c = chars[i];
                        i += 1;
                        c
                    };
                    // `a-z` range, unless `-` is the class's last char.
                    if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                        i += 1;
                        let hi = if chars[i] == '\\' && i + 1 < chars.len() {
                            i += 1;
                            let c = unescape(chars[i]);
                            i += 1;
                            c
                        } else {
                            let c = chars[i];
                            i += 1;
                            c
                        };
                        ranges.push((lo as u32, hi as u32));
                    } else {
                        ranges.push((lo as u32, lo as u32));
                    }
                }
                if i < chars.len() {
                    i += 1; // closing ']'
                }
                if ranges.is_empty() {
                    ranges.push((b' ' as u32, b'~' as u32));
                }
                Set::Class { ranges, negated }
            }
            c => {
                i += 1;
                Set::Lit(c)
            }
        };

        // Quantifier, if any.
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '*' => {
                    i += 1;
                    (0, 16)
                }
                '+' => {
                    i += 1;
                    (1, 17)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '{' => {
                    let close = chars[i..].iter().position(|&c| c == '}');
                    match close {
                        Some(off) => {
                            let body: String = chars[i + 1..i + off].iter().collect();
                            i += off + 1;
                            parse_counts(&body)
                        }
                        None => {
                            i += 1;
                            (1, 1)
                        }
                    }
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };

        atoms.push(Atom { set, min, max });
    }
    atoms
}

fn parse_counts(body: &str) -> (usize, usize) {
    match body.split_once(',') {
        Some((m, n)) => {
            let m = m.trim().parse().unwrap_or(0);
            let n = n.trim().parse().unwrap_or(m + 16);
            (m, n.max(m))
        }
        None => {
            let m = body.trim().parse().unwrap_or(1);
            (m, m)
        }
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

fn gen_char(set: &Set, rng: &mut TestRng) -> char {
    match set {
        Set::Lit(c) => *c,
        Set::Any => {
            // Mostly printable ASCII, a dash of tab and non-ASCII.
            match rng.below(20) {
                0 => '\t',
                1 => EXOTIC[rng.below(EXOTIC.len() as u64) as usize],
                _ => (b' ' + rng.below(95) as u8) as char,
            }
        }
        Set::Class { ranges, negated } => {
            if *negated {
                // Rejection-sample printable ASCII outside the ranges.
                for _ in 0..64 {
                    let c = (b' ' + rng.below(95) as u8) as char;
                    if !ranges
                        .iter()
                        .any(|&(lo, hi)| (lo..=hi).contains(&(c as u32)))
                    {
                        return c;
                    }
                }
                return 'x';
            }
            let idx = rng.below(ranges.len() as u64) as usize;
            let (lo, hi) = ranges[idx];
            let span = hi.saturating_sub(lo) as u64 + 1;
            char::from_u32(lo + rng.below(span) as u32).unwrap_or('?')
        }
    }
}

/// Generate one string matching `pattern` (within the supported subset).
pub fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let span = (atom.max - atom.min) as u64 + 1;
        let n = atom.min + rng.below(span) as usize;
        for _ in 0..n {
            out.push(gen_char(&atom.set, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(42)
    }

    #[test]
    fn counted_any() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate_pattern(".{0,12}", &mut r);
            assert!(s.chars().count() <= 12);
            assert!(!s.contains('\n'));
        }
    }

    #[test]
    fn ascii_class_range() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate_pattern("[ -~]{0,12}", &mut r);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn escaped_class_members() {
        let mut r = rng();
        let allowed: Vec<char> = "-+*/%()0123456789abcdefghijklmnopqrstuvwxyz $.[]{}\""
            .chars()
            .collect();
        for _ in 0..200 {
            let s = generate_pattern("[-+*/%()0-9a-z $.\\[\\]{}\"]{0,60}", &mut r);
            assert!(s.chars().all(|c| allowed.contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn star_plus_question_literals() {
        let mut r = rng();
        for _ in 0..50 {
            let s = generate_pattern("ab?c*d+", &mut r);
            assert!(s.starts_with('a'));
            assert!(s.ends_with('d'));
        }
    }
}
