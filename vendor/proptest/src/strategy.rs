//! The `Strategy` trait and core combinators.

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::string::generate_pattern;
use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `self` generates leaves, and `recurse`
    /// wraps an inner strategy into one more level, applied up to `depth`
    /// times. The size/branch hints are accepted for compatibility.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        Recursive {
            base: self.boxed(),
            recurse: Rc::new(move |inner| recurse(inner).boxed()),
            depth,
        }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among several strategies; built by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Choose uniformly among `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Result of [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    recurse: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive {
            base: self.base.clone(),
            recurse: Rc::clone(&self.recurse),
            depth: self.depth,
        }
    }
}

impl<T: fmt::Debug + 'static> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let levels = rng.below(self.depth as u64 + 1) as u32;
        let mut s = self.base.clone();
        for _ in 0..levels {
            s = (self.recurse)(s);
        }
        s.generate(rng)
    }
}

/// Regex-subset string strategy: a pattern literal generates matching
/// strings (see [`crate::string`] for the supported subset).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..200 {
            let v = (-3i32..4).generate(&mut rng);
            assert!((-3..4).contains(&v));
            let u = (1usize..6).generate(&mut rng);
            assert!((1..6).contains(&u));
            let f = (-1.0f64..1.0).generate(&mut rng);
            assert!((-1.0..1.0).contains(&f));
            let w = (0u64..=5).generate(&mut rng);
            assert!(w <= 5);
        }
    }

    #[test]
    fn map_union_recursive_compose() {
        #[derive(Debug, Clone, PartialEq)]
        enum N {
            Leaf(i32),
            Pair(Box<N>, Box<N>),
        }
        fn depth(n: &N) -> u32 {
            match n {
                N::Leaf(_) => 0,
                N::Pair(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (-9i32..10).prop_map(N::Leaf);
        let tree = leaf.prop_recursive(3, 8, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| N::Pair(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::from_seed(7);
        let mut max_depth = 0;
        for _ in 0..100 {
            max_depth = max_depth.max(depth(&tree.generate(&mut rng)));
        }
        assert!(max_depth >= 1, "recursion never fired");
        assert!(max_depth <= 3, "recursion exceeded depth bound");
    }

    #[test]
    fn just_and_tuples() {
        let mut rng = TestRng::from_seed(11);
        let s = (Just(5i32), 0u8..3, Just("x"));
        let (a, b, c) = s.generate(&mut rng);
        assert_eq!(a, 5);
        assert!(b < 3);
        assert_eq!(c, "x");
    }
}
