//! Collection strategies (`vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Half-open element-count range for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            min: r.start,
            max_exclusive: r.end.max(r.start + 1),
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_exclusive: r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

/// Strategy for `Vec<T>` with a length drawn from `size`.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_exclusive - self.size.min) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generate vectors whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_range() {
        let mut rng = TestRng::from_seed(5);
        let s = vec(0u8..10, 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
