//! Deterministic RNG and configuration for the proptest stand-in.

/// Per-run configuration. Only `cases` is honored; `max_shrink_iters`
/// exists for source compatibility (this stand-in does not shrink).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for compatibility; unused.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    /// Configured case count, overridable via `PROPTEST_CASES`.
    pub fn cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

/// Explicit test-case failure, for bodies that `return Err(..)` instead
/// of asserting.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property does not hold; the case fails.
    Fail(String),
    /// The input should be discarded (treated as a skip here).
    Reject(String),
}

impl TestCaseError {
    /// Fail the current case with a message.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Reject the current input.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// SplitMix64: tiny, fast, and plenty random for test generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed explicitly.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Seed from a test name (FNV-1a), so every test gets a distinct but
    /// reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::from_seed(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform bool.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("x::y");
        let mut b = TestRng::from_name("x::y");
        let mut c = TestRng::from_name("x::z");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn below_bounds() {
        let mut r = TestRng::from_seed(1);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
        assert_eq!(r.below(0), 0);
    }
}
