//! Minimal stand-in for `criterion`.
//!
//! Implements the subset of the criterion 0.5 API the benchmark harness
//! uses — groups, `sample_size`/`measurement_time`/`warm_up_time`,
//! `bench_function`/`bench_with_input`, `BenchmarkId`, `Throughput` — as
//! a plain wall-clock timer that prints mean iteration times. No
//! statistics, plots, or baselines; the numbers are indicative only.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export for convenience; the real crate has its own `black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(
            name,
            10,
            Duration::from_millis(500),
            Duration::from_millis(100),
            f,
        );
        self
    }
}

/// Identifier for a parameterized benchmark: `name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Build from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation (recorded but only echoed in output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples to collect.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget for measurement.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Wall-clock budget for warm-up.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Record the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        match t {
            Throughput::Bytes(n) => println!("   (throughput: {n} bytes/iter)"),
            Throughput::Elements(n) => println!("   (throughput: {n} elements/iter)"),
        }
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.id);
        run_one(
            &label,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            f,
        );
        self
    }

    /// Run one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (no-op beyond matching the real API).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` does the timing.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    mean: Option<Duration>,
    iters: u64,
}

impl Bencher {
    /// Time repeated calls of `f`, recording the mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed() / warm_iters as u32;

        // Size each sample so the whole measurement fits the budget.
        let budget_per_sample = self.measurement_time / self.sample_size as u32;
        let iters_per_sample = if per_iter.is_zero() {
            1000
        } else {
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            total += t.elapsed();
            iters += iters_per_sample;
        }
        self.mean = Some(total / iters.max(1) as u32);
        self.iters = iters;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    mut f: F,
) {
    let mut b = Bencher {
        sample_size,
        measurement_time,
        warm_up_time,
        mean: None,
        iters: 0,
    };
    f(&mut b);
    match b.mean {
        Some(m) => println!("{label:<48} mean {m:>12.3?}  ({} iters)", b.iters),
        None => println!("{label:<48} (no measurement)"),
    }
}

/// Declare a benchmark group runner, like the real crate.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the benchmark `main`, like the real crate.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn times_a_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.measurement_time(Duration::from_millis(5));
        group.warm_up_time(Duration::from_millis(1));
        let mut x = 0u64;
        group.bench_function("add", |b| b.iter(|| x = x.wrapping_add(1)));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        assert!(x > 0);
    }
}
